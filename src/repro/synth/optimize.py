"""Netlist optimisation passes.

Mirrors what Design Compiler does after elaboration, at the level of
detail the paper's evaluation depends on:

* **constant folding** -- controlling constants collapse gates, constant
  registers disappear (a flop whose D equals its Q holds its init value
  forever and becomes a constant);
* **buffer/double-inverter collapse**;
* **common-subexpression elimination** -- structurally identical gates
  merge, including identical flops (register merging);
* **dead-logic sweep** -- cones that reach no output, register or memory
  port are deleted.

Passes run to a fixpoint.  All passes preserve cycle-accurate behaviour,
which the equivalence tests (gate sim vs. RTL sim) verify.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .netlist import CellInstance, Net, Netlist

_COMMUTATIVE = {"AND2", "OR2", "XOR2", "XNOR2", "NAND2", "NOR2", "HA"}


class _Rewriter:
    """Accumulates net aliases and applies them in one sweep."""

    def __init__(self, netlist: Netlist):
        self.nl = netlist
        self.alias: Dict[Net, Net] = {}
        self.dead_cells: Set[CellInstance] = set()

    def resolve(self, net: Net) -> Net:
        seen = []
        while net in self.alias:
            seen.append(net)
            net = self.alias[net]
        for s in seen:  # path compression
            self.alias[s] = net
        return net

    def replace(self, old: Net, new: Net) -> None:
        if old is not new:
            self.alias[old] = new

    def kill(self, cell: CellInstance) -> None:
        self.dead_cells.add(cell)

    @property
    def changed(self) -> bool:
        return bool(self.alias) or bool(self.dead_cells)

    def apply(self) -> None:
        if not self.changed:
            return
        nl = self.nl
        if self.dead_cells:
            nl.cells = [c for c in nl.cells if c not in self.dead_cells]
        if self.alias:
            for cell in nl.cells:
                for pin in cell.pins:
                    cell.pins[pin] = self.resolve(cell.pins[pin])
            for name in nl.outputs:
                nl.outputs[name] = [self.resolve(n)
                                    for n in nl.outputs[name]]
            for macro in nl.memories:
                for rp in macro.read_ports:
                    rp.addr = [self.resolve(n) for n in rp.addr]
                    if rp.enable is not None:
                        rp.enable = self.resolve(rp.enable)
                for wp in macro.write_ports:
                    wp.enable = self.resolve(wp.enable)
                    wp.addr = [self.resolve(n) for n in wp.addr]
                    wp.data = [self.resolve(n) for n in wp.data]


def _const_value(nl: Netlist, net: Net) -> Optional[int]:
    if net is nl.const0:
        return 0
    if net is nl.const1:
        return 1
    return None


def _const_net(nl: Netlist, value: int) -> Net:
    return nl.const1 if value else nl.const0


def fold_constants(nl: Netlist) -> bool:
    """One constant-folding / local-simplification sweep."""
    rw = _Rewriter(nl)
    new_cells: List[CellInstance] = []

    def inv_of(net: Net) -> Net:
        c = _const_value(nl, net)
        if c is not None:
            return _const_net(nl, 1 - c)
        inst = CellInstance(f"opt_inv{len(new_cells)}", "INV", {"A": net},
                            {"Y": nl.new_net()})
        inst.outputs["Y"].kind = "cell"
        inst.outputs["Y"].driver = (inst, "Y")
        new_cells.append(inst)
        return inst.outputs["Y"]

    for cell in nl.cells:
        t = cell.cell_type
        if t == "BUF":
            rw.replace(cell.outputs["Y"], cell.pins["A"])
            rw.kill(cell)
            continue
        if t == "INV":
            a = cell.pins["A"]
            c = _const_value(nl, a)
            if c is not None:
                rw.replace(cell.outputs["Y"], _const_net(nl, 1 - c))
                rw.kill(cell)
            elif a.kind == "cell" and a.driver is not None and \
                    a.driver[0].cell_type == "INV" and \
                    a.driver[0] not in rw.dead_cells:
                rw.replace(cell.outputs["Y"], a.driver[0].pins["A"])
                rw.kill(cell)
            continue
        if t in ("AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2"):
            a, b = cell.pins["A"], cell.pins["B"]
            ca, cb = _const_value(nl, a), _const_value(nl, b)
            y = cell.outputs["Y"]
            result: Optional[Net] = None
            if ca is not None and cb is not None:
                table = {"AND2": ca & cb, "OR2": ca | cb,
                         "NAND2": 1 - (ca & cb), "NOR2": 1 - (ca | cb),
                         "XOR2": ca ^ cb, "XNOR2": 1 - (ca ^ cb)}
                result = _const_net(nl, table[t])
            elif ca is not None or cb is not None:
                const, var = (ca, b) if ca is not None else (cb, a)
                if t == "AND2":
                    result = var if const else nl.const0
                elif t == "OR2":
                    result = nl.const1 if const else var
                elif t == "NAND2":
                    result = inv_of(var) if const else nl.const1
                elif t == "NOR2":
                    result = nl.const0 if const else inv_of(var)
                elif t == "XOR2":
                    result = inv_of(var) if const else var
                else:  # XNOR2
                    result = var if const else inv_of(var)
            elif a is b:
                same = {"AND2": a, "OR2": a}
                if t in same:
                    result = same[t]
                elif t == "XOR2":
                    result = nl.const0
                elif t == "XNOR2":
                    result = nl.const1
                elif t == "NAND2" or t == "NOR2":
                    result = inv_of(a)
            if result is not None:
                rw.replace(y, result)
                rw.kill(cell)
            continue
        if t == "MUX2":
            s, a, b = cell.pins["S"], cell.pins["A"], cell.pins["B"]
            y = cell.outputs["Y"]
            cs = _const_value(nl, s)
            ca, cb = _const_value(nl, a), _const_value(nl, b)
            if cs is not None:
                rw.replace(y, b if cs else a)
                rw.kill(cell)
            elif a is b:
                rw.replace(y, a)
                rw.kill(cell)
            elif ca == 0 and cb == 1:
                rw.replace(y, s)
                rw.kill(cell)
            elif ca == 1 and cb == 0:
                rw.replace(y, inv_of(s))
                rw.kill(cell)
            continue
        if t == "HA":
            a, b = cell.pins["A"], cell.pins["B"]
            ca, cb = _const_value(nl, a), _const_value(nl, b)
            if ca is not None or cb is not None:
                const, var = (ca, b) if ca is not None else (cb, a)
                if const == 0:
                    rw.replace(cell.outputs["S"], var)
                    rw.replace(cell.outputs["CO"], nl.const0)
                else:
                    rw.replace(cell.outputs["S"], inv_of(var))
                    rw.replace(cell.outputs["CO"], var)
                rw.kill(cell)
            continue
        if t == "FA":
            a, b, ci = cell.pins["A"], cell.pins["B"], cell.pins["CI"]
            consts = [(p, _const_value(nl, n))
                      for p, n in (("A", a), ("B", b), ("CI", ci))]
            known = [(p, c) for p, c in consts if c is not None]
            if known:
                ones = sum(c for _p, c in known)
                unknown = [cell.pins[p] for p, c in consts if c is None]
                if len(unknown) == 0:
                    rw.replace(cell.outputs["S"], _const_net(nl, ones & 1))
                    rw.replace(cell.outputs["CO"],
                               _const_net(nl, 1 if ones >= 2 else 0))
                    rw.kill(cell)
                elif len(unknown) == 1:
                    x = unknown[0]
                    if ones == 0:
                        rw.replace(cell.outputs["S"], x)
                        rw.replace(cell.outputs["CO"], nl.const0)
                    elif ones == 1:
                        rw.replace(cell.outputs["S"], inv_of(x))
                        rw.replace(cell.outputs["CO"], x)
                    else:
                        rw.replace(cell.outputs["S"], x)
                        rw.replace(cell.outputs["CO"], nl.const1)
                    rw.kill(cell)
                elif len(unknown) == 2 and ones == 0:
                    inst = CellInstance(
                        f"opt_ha{len(new_cells)}", "HA",
                        {"A": unknown[0], "B": unknown[1]},
                        {"S": nl.new_net(), "CO": nl.new_net()},
                    )
                    for pin, net in inst.outputs.items():
                        net.kind = "cell"
                        net.driver = (inst, pin)
                    new_cells.append(inst)
                    rw.replace(cell.outputs["S"], inst.outputs["S"])
                    rw.replace(cell.outputs["CO"], inst.outputs["CO"])
                    rw.kill(cell)
            continue
        if t == "DFF":
            d, q = cell.pins["D"], cell.outputs["Q"]
            cd = _const_value(nl, d)
            if cd is not None and cd == cell.init:
                # Register stuck at its init value.
                rw.replace(q, _const_net(nl, cd))
                rw.kill(cell)
            elif d is q:
                # Self-loop: holds the init value forever.
                rw.replace(q, _const_net(nl, cell.init))
                rw.kill(cell)
            continue
    nl.cells.extend(new_cells)
    changed = rw.changed
    rw.apply()
    return changed


def eliminate_common_subexpressions(nl: Netlist) -> bool:
    """Merge structurally identical cells (including identical flops)."""
    rw = _Rewriter(nl)
    seen: Dict[Tuple, CellInstance] = {}
    for cell in nl.cells:
        if cell.keep:
            continue  # dont-touch (e.g. TMR copies must stay distinct)
        t = cell.cell_type
        if t in _COMMUTATIVE:
            key = (t, frozenset(n.uid for n in cell.pins.values()))
        elif t == "FA":
            key = (t, frozenset((cell.pins["A"].uid, cell.pins["B"].uid)),
                   cell.pins["CI"].uid)
        elif t == "DFF":
            key = (t, cell.pins["D"].uid, cell.init)
        elif t == "SDFF":
            continue  # scan flops are chained; never merge
        else:
            key = (t, tuple(sorted(
                (pin, net.uid) for pin, net in cell.pins.items()
            )))
        prior = seen.get(key)
        if prior is None:
            seen[key] = cell
        else:
            for pin, net in cell.outputs.items():
                rw.replace(net, prior.outputs[pin])
            rw.kill(cell)
    changed = rw.changed
    rw.apply()
    return changed


def sweep_dead_logic(nl: Netlist) -> bool:
    """Remove cells whose outputs reach no output/flop/memory port."""
    live_nets: Set[Net] = set()
    for nets in nl.outputs.values():
        live_nets.update(nets)
    for macro in nl.memories:
        for rp in macro.read_ports:
            live_nets.update(rp.addr)
            if rp.enable is not None:
                live_nets.add(rp.enable)
        for wp in macro.write_ports:
            live_nets.add(wp.enable)
            live_nets.update(wp.addr)
            live_nets.update(wp.data)

    driver_of: Dict[Net, CellInstance] = {}
    for cell in nl.cells:
        for net in cell.outputs.values():
            driver_of[net] = cell

    live_cells: Set[CellInstance] = set()
    stack = [driver_of[n] for n in live_nets if n in driver_of]
    while stack:
        cell = stack.pop()
        if cell in live_cells:
            continue
        live_cells.add(cell)
        for net in cell.pins.values():
            drv = driver_of.get(net)
            if drv is not None and drv not in live_cells:
                stack.append(drv)

    if len(live_cells) == len(nl.cells):
        return False
    nl.cells = [c for c in nl.cells if c in live_cells]
    return True


def optimize(nl: Netlist, max_iterations: int = 100) -> Netlist:
    """Run all passes to a fixpoint; returns the (mutated) netlist."""
    for _ in range(max_iterations):
        changed = fold_constants(nl)
        changed |= eliminate_common_subexpressions(nl)
        changed |= sweep_dead_logic(nl)
        if not changed:
            break
    nl.validate()
    return nl
