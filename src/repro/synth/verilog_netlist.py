"""Structural Verilog emission for gate-level netlists.

Writes the synthesised design as a flat standard-cell netlist -- the
"Gate-level (Verilog)" artefact at the bottom of the paper's Figure 1
design flow.  Cells are emitted as instances of behavioural cell models
(also emitted, once, into the same file) so the output is simulatable by
any Verilog simulator; memory macros become behavioural arrays.
"""

from __future__ import annotations

from typing import Dict, List

from .library import Library
from .netlist import CellInstance, MemoryMacro, Net, Netlist

_CELL_TEMPLATES = {
    "INV": "assign Y = ~A;",
    "BUF": "assign Y = A;",
    "NAND2": "assign Y = ~(A & B);",
    "NOR2": "assign Y = ~(A | B);",
    "AND2": "assign Y = A & B;",
    "OR2": "assign Y = A | B;",
    "XOR2": "assign Y = A ^ B;",
    "XNOR2": "assign Y = ~(A ^ B);",
    "MUX2": "assign Y = S ? B : A;",
    "FA": "assign S = A ^ B ^ CI;\n  assign CO = (A & B) | (A & CI) | (B & CI);",
    "HA": "assign S = A ^ B;\n  assign CO = A & B;",
    "DFF": "always @(posedge CK) Q <= D;",
    "SDFF": "always @(posedge CK) Q <= SE ? SI : D;",
}


def _emit_cell_model(name: str, library: Library) -> str:
    cell = library[name]
    ports = list(cell.inputs) + list(cell.outputs)
    if cell.sequential:
        ports = ["CK"] + ports
    lines = [f"module {name} ({', '.join(ports)});"]
    for pin in (["CK"] if cell.sequential else []) + list(cell.inputs):
        lines.append(f"  input {pin};")
    for pin in cell.outputs:
        kind = "output reg" if cell.sequential else "output"
        lines.append(f"  {kind} {pin};")
    lines.append(f"  {_CELL_TEMPLATES[name]}")
    lines.append("endmodule")
    return "\n".join(lines)


def _net_name(net: Net, netlist: Netlist) -> str:
    if net is netlist.const0:
        return "1'b0"
    if net is netlist.const1:
        return "1'b1"
    return "n" + str(net.uid)


def emit_gate_verilog(netlist: Netlist) -> str:
    """Render *netlist* as structural Verilog with inline cell models."""
    netlist.validate()
    lib = netlist.library
    out: List[str] = [
        f"// structural netlist of {netlist.name!r}: "
        f"{len(netlist.cells)} cells",
    ]
    used_cells = sorted({c.cell_type for c in netlist.cells})
    for name in used_cells:
        out.append(_emit_cell_model(name, lib))
        out.append("")

    ports = ["clk"]
    for name in netlist.inputs:
        ports.append(name)
    for name in netlist.outputs:
        ports.append(name)
    out.append(f"module {netlist.name} (")
    out.append("  " + ",\n  ".join(ports))
    out.append(");")
    out.append("  input clk;")
    for name, nets in netlist.inputs.items():
        width = f"[{len(nets) - 1}:0] " if len(nets) > 1 else ""
        out.append(f"  input {width}{name};")
    for name, nets in netlist.outputs.items():
        width = f"[{len(nets) - 1}:0] " if len(nets) > 1 else ""
        out.append(f"  output {width}{name};")

    # wires: every driven net
    driven = set()
    for cell in netlist.cells:
        driven.update(cell.outputs.values())
    for macro in netlist.memories:
        for rp in macro.read_ports:
            driven.update(rp.data)
    for net in sorted(driven, key=lambda n: n.uid):
        out.append(f"  wire {_net_name(net, netlist)};")

    # split input buses into bit wires
    for name, nets in netlist.inputs.items():
        for i, net in enumerate(nets):
            out.append(f"  wire {_net_name(net, netlist)}_in = "
                       f"{name}[{i}];" if len(nets) > 1 else
                       f"  wire {_net_name(net, netlist)}_in = {name};")

    def operand(net: Net) -> str:
        if net.kind == "input":
            return _net_name(net, netlist) + "_in"
        return _net_name(net, netlist)

    # cell instances
    for cell in netlist.cells:
        spec = lib[cell.cell_type]
        conns = []
        if spec.sequential:
            conns.append(".CK(clk)")
        for pin in spec.inputs:
            conns.append(f".{pin}({operand(cell.pins[pin])})")
        for pin in spec.outputs:
            conns.append(f".{pin}({_net_name(cell.outputs[pin], netlist)})")
        out.append(f"  {cell.cell_type} {cell.name} "
                   f"({', '.join(conns)});")

    # memory macros as behavioural arrays
    for macro in netlist.memories:
        out.append(f"  // memory macro {macro.name} "
                   f"({macro.depth} x {macro.width})")
        out.append(f"  reg [{macro.width - 1}:0] {macro.name} "
                   f"[0:{macro.depth - 1}];")
        for ri, rp in enumerate(macro.read_ports):
            addr = " , ".join(operand(n) for n in reversed(rp.addr))
            for i, dnet in enumerate(rp.data):
                out.append(
                    f"  assign {_net_name(dnet, netlist)} = "
                    f"{macro.name}[{{{addr}}}][{i}];"
                )
        for wp in macro.write_ports:
            addr = " , ".join(operand(n) for n in reversed(wp.addr))
            data = " , ".join(operand(n) for n in reversed(wp.data))
            out.append(
                f"  always @(posedge clk) if ({operand(wp.enable)}) "
                f"{macro.name}[{{{addr}}}] <= {{{data}}};"
            )

    # output buses
    for name, nets in netlist.outputs.items():
        bits = ", ".join(operand(n) for n in reversed(nets))
        out.append(f"  assign {name} = {{{bits}}};")

    out.append("endmodule")
    return "\n".join(out) + "\n"
