"""Technology mapping: word-level RTL onto standard cells.

Arithmetic is mapped through a *dot diagram*: every operand contributes
single-bit partial products ("dots") at their binary weights, a carry-save
reduction combines dots with full/half adders down to two rows, and a
final ripple-carry stage produces the result.  This uniform engine covers
addition, subtraction (two's complement), unsigned multiplication and
Baugh-Wooley signed multiplication, with constant dots folded on the fly.

Multiplexers (including ``Case`` selector trees) collapse structurally
when both sides of a mux are the same nets, so sparse FSM case statements
do not explode.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..rtl.expr import (Add, BitAnd, BitNot, BitOr, BitXor, Case, Cat, Cmp,
                        Const, Expr, Ext, MemRead, Mul, Mux, Reduce, Ref,
                        Shl, Shr, Slice, SMul, Sra, Sub)
from ..rtl.ir import RtlModule
from .library import DEFAULT_LIBRARY, Library
from .netlist import CellInstance, MemoryMacro, Net, Netlist, NetlistError


class MappingError(ValueError):
    """Raised when an RTL construct cannot be mapped."""


class TechnologyMapper:
    """Maps one :class:`RtlModule` onto a :class:`Netlist`."""

    def __init__(self, module: RtlModule, library: Library = DEFAULT_LIBRARY):
        module.validate()
        self.module = module
        self.library = library
        self.nl = Netlist(module.name, library)
        self.bits: Dict[str, List[Net]] = {}
        self._expr_cache: Dict[int, List[Net]] = {}
        self._macros: Dict[str, MemoryMacro] = {}
        self._deferred_read_enables: List[Tuple[MemoryMacro, int, Expr]] = []

    # ------------------------------------------------------------------
    # primitive helpers with constant folding
    # ------------------------------------------------------------------
    def _is0(self, net: Net) -> bool:
        return net is self.nl.const0

    def _is1(self, net: Net) -> bool:
        return net is self.nl.const1

    def inv(self, a: Net) -> Net:
        if self._is0(a):
            return self.nl.const1
        if self._is1(a):
            return self.nl.const0
        return self.nl.add_cell("INV", {"A": a}).outputs["Y"]

    def and2(self, a: Net, b: Net) -> Net:
        if self._is0(a) or self._is0(b):
            return self.nl.const0
        if self._is1(a):
            return b
        if self._is1(b):
            return a
        if a is b:
            return a
        return self.nl.add_cell("AND2", {"A": a, "B": b}).outputs["Y"]

    def nand2(self, a: Net, b: Net) -> Net:
        if self._is0(a) or self._is0(b):
            return self.nl.const1
        if self._is1(a):
            return self.inv(b)
        if self._is1(b):
            return self.inv(a)
        return self.nl.add_cell("NAND2", {"A": a, "B": b}).outputs["Y"]

    def or2(self, a: Net, b: Net) -> Net:
        if self._is1(a) or self._is1(b):
            return self.nl.const1
        if self._is0(a):
            return b
        if self._is0(b):
            return a
        if a is b:
            return a
        return self.nl.add_cell("OR2", {"A": a, "B": b}).outputs["Y"]

    def xor2(self, a: Net, b: Net) -> Net:
        if self._is0(a):
            return b
        if self._is0(b):
            return a
        if self._is1(a):
            return self.inv(b)
        if self._is1(b):
            return self.inv(a)
        if a is b:
            return self.nl.const0
        return self.nl.add_cell("XOR2", {"A": a, "B": b}).outputs["Y"]

    def xnor2(self, a: Net, b: Net) -> Net:
        return self.inv(self.xor2(a, b))

    def mux2(self, sel: Net, if_true: Net, if_false: Net) -> Net:
        """MUX2 cell convention: Y = S ? B : A."""
        if self._is1(sel):
            return if_true
        if self._is0(sel):
            return if_false
        if if_true is if_false:
            return if_true
        if self._is1(if_true) and self._is0(if_false):
            return sel
        if self._is0(if_true) and self._is1(if_false):
            return self.inv(sel)
        return self.nl.add_cell(
            "MUX2", {"S": sel, "A": if_false, "B": if_true}
        ).outputs["Y"]

    def full_adder(self, a: Net, b: Net, c: Net) -> Tuple[Net, Net]:
        """Returns (sum, carry), folding constant inputs."""
        consts = [x for x in (a, b, c) if self._is0(x) or self._is1(x)]
        if len(consts) >= 1:
            ones = sum(1 for x in consts if self._is1(x))
            rest = [x for x in (a, b, c)
                    if not (self._is0(x) or self._is1(x))]
            if len(rest) == 0:
                return (
                    self.nl.const1 if ones & 1 else self.nl.const0,
                    self.nl.const1 if ones >= 2 else self.nl.const0,
                )
            if len(rest) == 1:
                x = rest[0]
                if ones == 0:
                    return x, self.nl.const0
                if ones == 1:
                    return self.inv(x), x
                return x, self.nl.const1
            x, y = rest
            if ones == 0:
                return self.half_adder(x, y)
            # ones == 1: sum = XNOR, carry = OR
            return self.xnor2(x, y), self.or2(x, y)
        inst = self.nl.add_cell("FA", {"A": a, "B": b, "CI": c})
        return inst.outputs["S"], inst.outputs["CO"]

    def half_adder(self, a: Net, b: Net) -> Tuple[Net, Net]:
        if self._is0(a):
            return b, self.nl.const0
        if self._is0(b):
            return a, self.nl.const0
        if self._is1(a):
            return self.inv(b), b
        if self._is1(b):
            return self.inv(a), a
        inst = self.nl.add_cell("HA", {"A": a, "B": b})
        return inst.outputs["S"], inst.outputs["CO"]

    # ------------------------------------------------------------------
    # dot-diagram arithmetic
    # ------------------------------------------------------------------
    def sum_dots(self, dots: List[List[Net]], width: int) -> List[Net]:
        """Carry-save reduce *dots* (dots[w] = nets of weight w) to two
        rows, then ripple-carry; returns *width* result bits."""
        cols: List[List[Net]] = [list(c) for c in dots[:width]]
        while len(cols) < width:
            cols.append([])
        # fold constants: pairs of 1s at weight w become one 1 at w+1
        for w in range(width):
            ones = sum(1 for n in cols[w] if self._is1(n))
            cols[w] = [n for n in cols[w]
                       if not (self._is0(n) or self._is1(n))]
            carry, bit = divmod(ones, 2)
            if bit:
                cols[w].append(self.nl.const1)
            if carry and w + 1 < width:
                cols[w + 1].extend([self.nl.const1] * carry)
        # carry-save reduction
        while any(len(c) > 2 for c in cols):
            nxt: List[List[Net]] = [[] for _ in range(width)]
            for w in range(width):
                col = cols[w]
                i = 0
                while len(col) - i >= 3:
                    s, co = self.full_adder(col[i], col[i + 1], col[i + 2])
                    i += 3
                    nxt[w].append(s)
                    if w + 1 < width:
                        nxt[w + 1].append(co)
                nxt[w].extend(col[i:])
            cols = nxt
        # final ripple-carry over at most two rows
        result: List[Net] = []
        carry = self.nl.const0
        for w in range(width):
            col = cols[w]
            a = col[0] if len(col) > 0 else self.nl.const0
            b = col[1] if len(col) > 1 else self.nl.const0
            s, carry = self.full_adder(a, b, carry)
            result.append(s)
        return result

    def add_bits(self, a: Sequence[Net], b: Sequence[Net],
                 width: int, carry_in: Optional[Net] = None) -> List[Net]:
        dots: List[List[Net]] = [[] for _ in range(width)]
        for w in range(min(width, len(a))):
            dots[w].append(a[w])
        for w in range(min(width, len(b))):
            dots[w].append(b[w])
        if carry_in is not None:
            dots[0].append(carry_in)
        return self.sum_dots(dots, width)

    def sub_bits(self, a: Sequence[Net], b: Sequence[Net],
                 width: int) -> List[Net]:
        """a - b over *width* bits (operands zero-extended)."""
        a_ext = self._extend(list(a), width, signed=False)
        b_ext = self._extend(list(b), width, signed=False)
        b_inv = [self.inv(n) for n in b_ext]
        return self.add_bits(a_ext, b_inv, width,
                             carry_in=self.nl.const1)

    def _rca_carry_out(self, a: Sequence[Net], b_inv: Sequence[Net]) -> Net:
        """Carry-out of a + ~b + 1 (used by unsigned comparison)."""
        carry = self.nl.const1
        for x, y in zip(a, b_inv):
            _s, carry = self.full_adder(x, y, carry)
        return carry

    def mul_bits(self, a: Sequence[Net], b: Sequence[Net],
                 width: int) -> List[Net]:
        """Unsigned multiply; result truncated to *width*."""
        dots: List[List[Net]] = [[] for _ in range(width)]
        for i, abit in enumerate(a):
            for j, bbit in enumerate(b):
                w = i + j
                if w < width:
                    dots[w].append(self.and2(abit, bbit))
        return self.sum_dots(dots, width)

    def smul_bits(self, a: Sequence[Net], b: Sequence[Net]) -> List[Net]:
        """Baugh-Wooley signed multiply; result width len(a)+len(b)."""
        m, n = len(a), len(b)
        if m < 2 or n < 2:
            raise MappingError("signed multiply needs operands >= 2 bits")
        width = m + n
        dots: List[List[Net]] = [[] for _ in range(width)]
        for i in range(m - 1):
            for j in range(n - 1):
                dots[i + j].append(self.and2(a[i], b[j]))
        for j in range(n - 1):
            dots[m - 1 + j].append(self.nand2(a[m - 1], b[j]))
        for i in range(m - 1):
            dots[n - 1 + i].append(self.nand2(a[i], b[n - 1]))
        dots[m + n - 2].append(self.and2(a[m - 1], b[n - 1]))
        dots[m - 1].append(self.nl.const1)
        dots[n - 1].append(self.nl.const1)
        dots[m + n - 1].append(self.nl.const1)
        return self.sum_dots(dots, width)

    # ------------------------------------------------------------------
    # bit-vector utilities
    # ------------------------------------------------------------------
    def _extend(self, bits: List[Net], width: int, signed: bool) -> List[Net]:
        if len(bits) >= width:
            return bits[:width]
        pad = bits[-1] if signed else self.nl.const0
        return bits + [pad] * (width - len(bits))

    def const_bits(self, value: int, width: int) -> List[Net]:
        return [
            self.nl.const1 if (value >> i) & 1 else self.nl.const0
            for i in range(width)
        ]

    def _and_tree(self, nets: List[Net]) -> Net:
        if not nets:
            return self.nl.const1
        while len(nets) > 1:
            nxt = []
            for i in range(0, len(nets) - 1, 2):
                nxt.append(self.and2(nets[i], nets[i + 1]))
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        return nets[0]

    def _or_tree(self, nets: List[Net]) -> Net:
        if not nets:
            return self.nl.const0
        while len(nets) > 1:
            nxt = []
            for i in range(0, len(nets) - 1, 2):
                nxt.append(self.or2(nets[i], nets[i + 1]))
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        return nets[0]

    def _xor_tree(self, nets: List[Net]) -> Net:
        if not nets:
            return self.nl.const0
        while len(nets) > 1:
            nxt = []
            for i in range(0, len(nets) - 1, 2):
                nxt.append(self.xor2(nets[i], nets[i + 1]))
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        return nets[0]

    # ------------------------------------------------------------------
    # expression mapping
    # ------------------------------------------------------------------
    def map_expr(self, expr: Expr) -> List[Net]:
        cached = self._expr_cache.get(id(expr))
        if cached is not None:
            return cached
        bits = self._map_expr_uncached(expr)
        if len(bits) != expr.width:
            raise MappingError(
                f"{type(expr).__name__} mapped to {len(bits)} bits, "
                f"expected {expr.width}"
            )
        self._expr_cache[id(expr)] = bits
        return bits

    def _map_expr_uncached(self, expr: Expr) -> List[Net]:
        if isinstance(expr, Const):
            return self.const_bits(expr.value, expr.width)
        if isinstance(expr, Ref):
            return list(self.bits[expr.name])
        if isinstance(expr, Add):
            return self.add_bits(self.map_expr(expr.a), self.map_expr(expr.b),
                                 expr.width)
        if isinstance(expr, Sub):
            return self.sub_bits(self.map_expr(expr.a), self.map_expr(expr.b),
                                 expr.width)
        if isinstance(expr, Mul):
            return self.mul_bits(self.map_expr(expr.a), self.map_expr(expr.b),
                                 expr.width)
        if isinstance(expr, SMul):
            return self.smul_bits(self.map_expr(expr.a),
                                  self.map_expr(expr.b))
        if isinstance(expr, (BitAnd, BitOr, BitXor)):
            a = self._extend(self.map_expr(expr.a), expr.width, signed=False)
            b = self._extend(self.map_expr(expr.b), expr.width, signed=False)
            fn = {BitAnd: self.and2, BitOr: self.or2,
                  BitXor: self.xor2}[type(expr)]
            return [fn(x, y) for x, y in zip(a, b)]
        if isinstance(expr, BitNot):
            return [self.inv(n) for n in self.map_expr(expr.a)]
        if isinstance(expr, Shl):
            bits = self.map_expr(expr.a)
            return [self.nl.const0] * expr.amount + bits
        if isinstance(expr, Shr):
            bits = self.map_expr(expr.a)[expr.amount:]
            return bits if bits else [self.nl.const0]
        if isinstance(expr, Sra):
            bits = self.map_expr(expr.a)
            sign = bits[-1]
            out = bits[expr.amount:] + [sign] * min(expr.amount, len(bits))
            return out[:expr.width]
        if isinstance(expr, Cmp):
            return [self._map_cmp(expr)]
        if isinstance(expr, Mux):
            sel = self.map_expr(expr.sel)[0]
            t = self._extend(self.map_expr(expr.if_true), expr.width, False)
            f = self._extend(self.map_expr(expr.if_false), expr.width, False)
            return [self.mux2(sel, x, y) for x, y in zip(t, f)]
        if isinstance(expr, Case):
            return self._map_case(expr)
        if isinstance(expr, Cat):
            out: List[Net] = []
            for part in reversed(expr.parts):
                out.extend(self.map_expr(part))
            return out
        if isinstance(expr, Slice):
            return self.map_expr(expr.a)[expr.lsb:expr.msb + 1]
        if isinstance(expr, Ext):
            return self._extend(self.map_expr(expr.a), expr.width,
                                expr.signed)
        if isinstance(expr, Reduce):
            bits = self.map_expr(expr.a)
            if expr.op == "and":
                return [self._and_tree(list(bits))]
            if expr.op == "or":
                return [self._or_tree(list(bits))]
            return [self._xor_tree(list(bits))]
        if isinstance(expr, MemRead):
            macro = self._macros[expr.mem_name]
            addr_width = max(1, (macro.depth).bit_length())
            addr = self._extend(self.map_expr(expr.addr), addr_width, False)
            data = self.nl.add_mem_read_port(macro, addr)
            # The RTL read port sharing this address expression may carry a
            # chip-select; map it after all assigns exist (it may reference
            # nets declared later).
            enable = self._read_enable_exprs.get((expr.mem_name,
                                                  id(expr.addr)))
            if enable is not None:
                self._deferred_read_enables.append(
                    (macro, len(macro.read_ports) - 1, enable)
                )
            return data
        raise MappingError(f"cannot map {type(expr).__name__}")

    def _map_cmp(self, expr: Cmp) -> Net:
        a_bits = self.map_expr(expr.a)
        b_bits = self.map_expr(expr.b)
        w = max(len(a_bits), len(b_bits))
        signed = expr.op in ("slt", "sle")
        a = self._extend(a_bits, w, signed)
        b = self._extend(b_bits, w, signed)
        if signed:
            # Bias trick: flip sign bits, then compare unsigned.
            a = a[:-1] + [self.inv(a[-1])]
            b = b[:-1] + [self.inv(b[-1])]
        op = expr.op
        if op == "eq" or op == "ne":
            diff = [self.xor2(x, y) for x, y in zip(a, b)]
            any_diff = self._or_tree(diff)
            return any_diff if op == "ne" else self.inv(any_diff)
        if op in ("ult", "slt"):
            # a < b  <=>  no carry out of a + ~b + 1
            return self.inv(
                self._rca_carry_out(a, [self.inv(n) for n in b])
            )
        # ule / sle: a <= b  <=>  not (b < a)
        return self._rca_carry_out(b, [self.inv(n) for n in a])

    def _map_case(self, expr: Case) -> List[Net]:
        width = expr.width
        default = tuple(
            self._extend(self.map_expr(expr.default), width, False)
        )
        leaves: Dict[int, Tuple[Net, ...]] = {}
        for value, branch in expr.branches.items():
            leaves[value] = tuple(
                self._extend(self.map_expr(branch), width, False)
            )
        sel_bits = self.map_expr(expr.sel)

        def build(bit: int, prefix_value: int) -> Tuple[Net, ...]:
            if bit < 0:
                return leaves.get(prefix_value, default)
            low = build(bit - 1, prefix_value)
            high = build(bit - 1, prefix_value | (1 << bit))
            if low == high:
                return low
            sel = sel_bits[bit]
            return tuple(
                self.mux2(sel, h, l) for h, l in zip(high, low)
            )

        return list(build(len(sel_bits) - 1, 0))

    # ------------------------------------------------------------------
    # top-level
    # ------------------------------------------------------------------
    def run(self) -> Netlist:
        module = self.module
        # primary inputs
        for port in module.ports:
            if port.direction == "in":
                self.bits[port.name] = self.nl.add_input(port.name,
                                                         port.width)
        # register Q nets (flop cells attached after nexts are mapped)
        reg_q: Dict[str, List[Net]] = {}
        for reg in module.registers:
            nets = self.nl.new_nets(reg.width, reg.name)
            reg_q[reg.name] = nets
            self.bits[reg.name] = nets
        # memory macros
        self._read_enable_exprs: Dict[Tuple[str, int], Expr] = {}
        for mem in module.memories:
            self._macros[mem.name] = self.nl.add_memory(
                mem.name, mem.depth, mem.width, mem.contents
            )
            for rp in mem.read_ports:
                if rp.enable is not None:
                    self._read_enable_exprs[(mem.name, id(rp.addr))] = \
                        rp.enable
        # combinational assigns in dependency order
        for assign in module.topo_assign_order():
            self.bits[assign.name] = self.map_expr(assign.expr)
        # register next functions -> flops
        for reg in module.registers:
            d_bits = self._extend(self.map_expr(reg.next), reg.width, False)
            for i, (d, q) in enumerate(zip(d_bits, reg_q[reg.name])):
                inst = CellInstance(
                    f"{reg.name}_ff{i}", "DFF", {"D": d}, {"Q": q},
                    init=(reg.init >> i) & 1,
                    keep=reg.name in module.keep_registers,
                )
                q.kind = "cell"
                q.driver = (inst, "Q")
                self.nl.cells.append(inst)
        # memory write ports and deferred read enables
        for mem in module.memories:
            macro = self._macros[mem.name]
            addr_width = max(1, macro.depth.bit_length())
            for wp in mem.write_ports:
                en = self.map_expr(wp.enable)[0]
                addr = self._extend(self.map_expr(wp.addr), addr_width,
                                    False)
                data = self._extend(self.map_expr(wp.data), macro.width,
                                    False)
                self.nl.add_mem_write_port(macro, en, addr, data)
        for macro, port_index, enable in self._deferred_read_enables:
            macro.read_ports[port_index].enable = self.map_expr(enable)[0]
        # outputs
        for port in module.ports:
            if port.direction == "out":
                source = module.outputs[port.name]
                self.nl.set_output(port.name, self.bits[source])
        self.nl.validate()
        return self.nl


def map_to_gates(module: RtlModule,
                 library: Library = DEFAULT_LIBRARY) -> Netlist:
    """Convenience wrapper: map *module* onto gates from *library*."""
    return TechnologyMapper(module, library).run()
