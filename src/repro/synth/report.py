"""Area reporting (Design Compiler's ``report_area``).

Splits cell area into combinational and non-combinational (sequential),
exactly the split the paper's Figure 10 plots.  Memory macros are
excluded "because they are identical for all implementations and do not
reflect the quality of the synthesis result" (paper Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .netlist import Netlist


@dataclass
class AreaReport:
    """Area summary of one synthesised design."""

    design: str
    combinational: float
    sequential: float
    cell_counts: Dict[str, int] = field(default_factory=dict)
    flop_count: int = 0
    excluded_memories: List[str] = field(default_factory=list)

    @property
    def total(self) -> float:
        return self.combinational + self.sequential

    def relative_to(self, reference: "AreaReport") -> "RelativeArea":
        return RelativeArea(
            design=self.design,
            reference=reference.design,
            combinational=self.combinational / reference.total * 100.0,
            sequential=self.sequential / reference.total * 100.0,
        )

    def format(self) -> str:
        lines = [
            f"Area report for {self.design}",
            f"  combinational area : {self.combinational:10.1f}",
            f"  noncombinational   : {self.sequential:10.1f}",
            f"  total cell area    : {self.total:10.1f}",
            f"  flip-flops         : {self.flop_count:7d}",
        ]
        if self.excluded_memories:
            lines.append(
                "  memories excluded  : " + ", ".join(self.excluded_memories)
            )
        return "\n".join(lines)


@dataclass
class RelativeArea:
    """Area of one design normalised to a reference total (= 100 %)."""

    design: str
    reference: str
    combinational: float
    sequential: float

    @property
    def total(self) -> float:
        return self.combinational + self.sequential


def report_area(netlist: Netlist, design_name: str = None) -> AreaReport:
    """Aggregate cell areas of *netlist* (memories excluded)."""
    lib = netlist.library
    combinational = 0.0
    sequential = 0.0
    counts: Dict[str, int] = {}
    flops = 0
    for cell in netlist.cells:
        spec = lib[cell.cell_type]
        counts[cell.cell_type] = counts.get(cell.cell_type, 0) + 1
        if spec.sequential:
            sequential += spec.area
            flops += 1
        else:
            combinational += spec.area
    return AreaReport(
        design=design_name or netlist.name,
        combinational=combinational,
        sequential=sequential,
        cell_counts=counts,
        flop_count=flops,
        excluded_memories=[m.name for m in netlist.memories],
    )
