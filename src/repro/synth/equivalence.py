"""Simulation-based equivalence checking: RTL vs. gate netlist.

A lightweight stand-in for formal equivalence checking: drives both the
compiled RTL simulation and the gate-level simulation with the same
vector stream (directed corners plus seeded random vectors), cycle by
cycle, and compares every output each cycle.  Used by the flow to sign
off each synthesis run, and heavily by the test suite.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..rtl import RtlModule, RtlSimulator
from .netlist import Netlist


@dataclass
class Mismatch:
    cycle: int
    output: str
    rtl_value: int
    gate_value: int
    inputs: Dict[str, int]


@dataclass
class EquivalenceResult:
    equivalent: bool
    vectors: int
    mismatches: List[Mismatch] = field(default_factory=list)

    def format(self) -> str:
        if self.equivalent:
            return f"EQUIVALENT over {self.vectors} vectors"
        first = self.mismatches[0]
        return (
            f"NOT EQUIVALENT: first mismatch at cycle {first.cycle}, "
            f"output {first.output!r}: rtl={first.rtl_value} "
            f"gate={first.gate_value} inputs={first.inputs}"
        )


def _corner_vectors(widths: Dict[str, int]) -> List[Dict[str, int]]:
    """All-zeros, all-ones, walking patterns per input."""
    vectors = [
        {name: 0 for name in widths},
        {name: (1 << w) - 1 for name, w in widths.items()},
    ]
    for name, w in widths.items():
        for bit in range(min(w, 8)):
            vec = {n: 0 for n in widths}
            vec[name] = 1 << bit
            vectors.append(vec)
    return vectors


def check_equivalence(
    module: RtlModule,
    netlist: Netlist,
    vectors: int = 200,
    seed: int = 0,
    max_mismatches: int = 5,
    ignore_outputs: Tuple[str, ...] = ("scan_out",),
) -> EquivalenceResult:
    """Compare *module* against *netlist* over corner + random vectors.

    Scan-related pins of the netlist are held inactive; ``scan_out`` is
    excluded from comparison (the RTL has no scan chain).
    """
    # imported here: gatesim itself imports from repro.synth (library)
    from ..gatesim import GateSimulator

    rtl = RtlSimulator(module)
    gate = GateSimulator(netlist)
    widths = {p.name: p.width for p in module.ports if p.direction == "in"}
    outputs = [name for name in module.output_names()
               if name not in ignore_outputs]

    if "scan_en" in netlist.inputs:
        gate.set_input("scan_en", 0)
        gate.set_input("scan_in", 0)

    rng = random.Random(seed)
    stream = _corner_vectors(widths)
    while len(stream) < vectors:
        stream.append(
            {name: rng.randrange(1 << w) for name, w in widths.items()}
        )
    stream = stream[:vectors]

    result = EquivalenceResult(equivalent=True, vectors=len(stream))
    for cycle, vec in enumerate(stream):
        for name, value in vec.items():
            rtl.set_input(name, value)
            gate.set_input(name, value)
        rtl.step()
        gate.step()
        for name in outputs:
            rv = rtl.get(name)
            gv = gate.get(name)
            if rv != gv:
                result.equivalent = False
                result.mismatches.append(
                    Mismatch(cycle, name, rv, gv, dict(vec))
                )
                if len(result.mismatches) >= max_mismatches:
                    return result
    return result
