"""Logic synthesis: technology library, mapping, optimisation, reports."""

from .library import DEFAULT_LIBRARY, Cell, Library, generic_025um
from .mapping import MappingError, TechnologyMapper, map_to_gates
from .netlist import (CellInstance, MemoryMacro, MemReadMacroPort,
                      MemWriteMacroPort, Net, Netlist, NetlistError)
from .optimize import (eliminate_common_subexpressions, fold_constants,
                       optimize, sweep_dead_logic)
from .report import AreaReport, RelativeArea, report_area
from .scan import insert_scan_chain
from .timing import TimingReport, report_timing
from .equivalence import EquivalenceResult, Mismatch, check_equivalence
from .power import PowerReport, ToggleMonitor, estimate_power
from .stats import NetlistStats, netlist_stats
from .verilog_netlist import emit_gate_verilog
from ..obs.trace import span


def synthesize(module, library=DEFAULT_LIBRARY, scan: bool = True,
               optimize_netlist: bool = True):
    """Full RTL-to-gates flow: map, optimise, insert scan.

    Returns the final :class:`Netlist`.  This mirrors a Design Compiler
    ``compile`` run with the paper's settings (scan included).
    """
    with span("synthesize", design=module.name, scan=scan) as sp:
        netlist = map_to_gates(module, library)
        if optimize_netlist:
            optimize(netlist)
        if scan:
            insert_scan_chain(netlist)
        sp.note(cells=len(netlist.cells))
    return netlist


__all__ = [
    "AreaReport", "Cell", "CellInstance", "DEFAULT_LIBRARY", "Library",
    "EquivalenceResult", "MappingError", "MemoryMacro", "MemReadMacroPort",
    "MemWriteMacroPort", "Mismatch", "check_equivalence",
    "Net", "Netlist", "NetlistError", "PowerReport", "RelativeArea",
    "TechnologyMapper", "ToggleMonitor", "estimate_power",
    "TimingReport", "eliminate_common_subexpressions", "emit_gate_verilog",
    "fold_constants",
    "generic_025um", "insert_scan_chain", "map_to_gates", "optimize",
    "NetlistStats", "netlist_stats",
    "report_area", "report_timing", "sweep_dead_logic", "synthesize",
]
