"""Scan-chain insertion.

The paper's area numbers include a scan chain in every design (Section
5.2), so synthesis replaces each DFF with a scan flop (SDFF: internal
D/SI mux selected by scan-enable) and stitches all flops into a single
chain from ``scan_in`` to ``scan_out``.
"""

from __future__ import annotations

from typing import List

from .netlist import CellInstance, Netlist, NetlistError


def insert_scan_chain(netlist: Netlist) -> Netlist:
    """Replace every DFF with an SDFF and stitch the scan chain.

    Adds ports ``scan_in``, ``scan_en`` (inputs) and ``scan_out``
    (output).  Chain order follows cell order (deterministic).
    """
    if netlist.scan_chain:
        raise NetlistError(f"{netlist.name!r} already has a scan chain")
    flops = [c for c in netlist.cells if c.cell_type == "DFF"]
    scan_in = netlist.add_input("scan_in", 1)[0]
    scan_en = netlist.add_input("scan_en", 1)[0]

    previous = scan_in
    chain: List[CellInstance] = []
    for flop in flops:
        flop.cell_type = "SDFF"
        flop.pins["SI"] = previous
        flop.pins["SE"] = scan_en
        previous = flop.outputs["Q"]
        chain.append(flop)

    netlist.set_output("scan_out", [previous])
    netlist.scan_chain = chain
    netlist.validate()
    return netlist
