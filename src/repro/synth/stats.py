"""Structural netlist statistics.

Logic-depth and fanout analysis of a gate netlist -- the quick sanity
panel a designer checks after synthesis, complementing the area and
timing reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .netlist import CellInstance, Net, Netlist


@dataclass
class NetlistStats:
    """Depth/fanout summary of one netlist."""

    design: str
    cell_count: int
    flop_count: int
    max_logic_depth: int
    mean_logic_depth: float
    max_fanout: int
    mean_fanout: float
    depth_histogram: Dict[int, int] = field(default_factory=dict)

    def format(self) -> str:
        return (
            f"Netlist statistics for {self.design}\n"
            f"  cells          : {self.cell_count}\n"
            f"  flip-flops     : {self.flop_count}\n"
            f"  logic depth    : max {self.max_logic_depth}, "
            f"mean {self.mean_logic_depth:.1f}\n"
            f"  fanout         : max {self.max_fanout}, "
            f"mean {self.mean_fanout:.2f}"
        )


def netlist_stats(netlist: Netlist) -> NetlistStats:
    """Compute structural statistics of *netlist*."""
    lib = netlist.library
    comb = [c for c in netlist.cells if not lib[c.cell_type].sequential]
    flops = [c for c in netlist.cells if lib[c.cell_type].sequential]

    driver_of: Dict[Net, CellInstance] = {}
    for cell in comb:
        for net in cell.outputs.values():
            driver_of[net] = cell

    # levelise combinational cells (depth from inputs/flops/consts)
    depth: Dict[CellInstance, int] = {}

    def level_of(cell: CellInstance) -> int:
        if cell in depth:
            return depth[cell]
        stack = [(cell, False)]
        while stack:
            current, expanded = stack.pop()
            if current in depth:
                continue
            if expanded:
                level = 1
                for net in current.pins.values():
                    drv = driver_of.get(net)
                    if drv is not None:
                        level = max(level, depth[drv] + 1)
                depth[current] = level
                continue
            stack.append((current, True))
            for net in current.pins.values():
                drv = driver_of.get(net)
                if drv is not None and drv not in depth:
                    stack.append((drv, False))
        return depth[cell]

    for cell in comb:
        level_of(cell)

    histogram: Dict[int, int] = {}
    for level in depth.values():
        histogram[level] = histogram.get(level, 0) + 1

    fanouts: List[int] = []
    fanout_index = netlist.fanout_index()
    for cell in netlist.cells:
        for net in cell.outputs.values():
            fanouts.append(len(fanout_index.get(net, ())))

    depths = list(depth.values()) or [0]
    return NetlistStats(
        design=netlist.name,
        cell_count=len(netlist.cells),
        flop_count=len(flops),
        max_logic_depth=max(depths),
        mean_logic_depth=sum(depths) / len(depths),
        max_fanout=max(fanouts) if fanouts else 0,
        mean_fanout=(sum(fanouts) / len(fanouts)) if fanouts else 0.0,
        depth_histogram=dict(sorted(histogram.items())),
    )
