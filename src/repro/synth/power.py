"""Activity-based dynamic power estimation.

An extension beyond the paper's area/timing evaluation (its Section 6
notes efficiency concerns generally): dynamic power is estimated from
real switching activity -- the gate-level simulator counts output
toggles per cell, and each toggle is charged the cell's switching energy
(proportional to its area, a standard first-order model for a uniform
library).  Leakage is charged per cell-area per cycle.

Usage::

    monitor = ToggleMonitor(gate_sim)
    ... run the workload ...
    report = estimate_power(gate_sim.netlist, monitor,
                            clock_ns=40.0, cycles=gate_sim.cycles)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .netlist import Netlist

#: switching energy per gate-equivalent of cell area (pJ / toggle / GE)
ENERGY_PER_GE_PJ = 0.012
#: leakage power per gate-equivalent (uW / GE), 0.25 um-era magnitude
LEAKAGE_PER_GE_UW = 0.002
#: clock-tree energy charged per flop per cycle (pJ)
CLOCK_PJ_PER_FLOP = 0.006


class ToggleMonitor:
    """Counts output-net toggles of every cell in a gate simulation.

    Attaches to a :class:`~repro.gatesim.simulator.GateSimulator` by
    snapshotting net values each cycle; call :meth:`sample` once per
    clock cycle (or use :meth:`run_cycles` to drive and sample).
    """

    def __init__(self, sim):
        self.sim = sim
        nl = sim.netlist
        self._watched: List[int] = []
        self._area: List[float] = []
        lib = nl.library
        for cell in nl.cells:
            area = lib[cell.cell_type].area
            for net in cell.outputs.values():
                self._watched.append(net.uid)
                self._area.append(area)
        self._last = [sim.values[uid] for uid in self._watched]
        self.toggles = [0] * len(self._watched)
        self.cycles_sampled = 0

    def sample(self) -> None:
        values = self.sim.values
        last = self._last
        toggles = self.toggles
        for i, uid in enumerate(self._watched):
            v = values[uid]
            if v != last[i]:
                toggles[i] += 1
                last[i] = v
        self.cycles_sampled += 1

    @property
    def total_toggles(self) -> int:
        return sum(self.toggles)

    def switched_area(self) -> float:
        """Sum over toggles of the toggling cell's area (GE-toggles)."""
        return sum(t * a for t, a in zip(self.toggles, self._area))

    def activity_factor(self) -> float:
        """Average toggles per net per cycle."""
        if not self.cycles_sampled or not self._watched:
            return 0.0
        return self.total_toggles / (len(self._watched) *
                                     self.cycles_sampled)


@dataclass
class PowerReport:
    """First-order dynamic/leakage power estimate."""

    design: str
    switching_uw: float
    clock_uw: float
    leakage_uw: float
    activity_factor: float
    cycles: int

    @property
    def total_uw(self) -> float:
        return self.switching_uw + self.clock_uw + self.leakage_uw

    def format(self) -> str:
        return (
            f"Power estimate for {self.design}\n"
            f"  switching : {self.switching_uw:10.1f} uW\n"
            f"  clock tree: {self.clock_uw:10.1f} uW\n"
            f"  leakage   : {self.leakage_uw:10.1f} uW\n"
            f"  total     : {self.total_uw:10.1f} uW "
            f"(activity {self.activity_factor:.3f}, "
            f"{self.cycles} cycles)"
        )


def estimate_power(netlist: Netlist, monitor: ToggleMonitor,
                   clock_ns: float, cycles: int = 0) -> PowerReport:
    """Estimate average power over the monitored window."""
    cycles = cycles or monitor.cycles_sampled
    if cycles <= 0:
        raise ValueError("no cycles sampled")
    window_ns = cycles * clock_ns
    switching_pj = monitor.switched_area() * ENERGY_PER_GE_PJ
    flops = len(netlist.flops())
    clock_pj = flops * CLOCK_PJ_PER_FLOP * cycles
    lib = netlist.library
    total_area = sum(lib[c.cell_type].area for c in netlist.cells)
    leakage_uw = total_area * LEAKAGE_PER_GE_UW
    # pJ / ns == mW; convert to uW
    return PowerReport(
        design=netlist.name,
        switching_uw=switching_pj / window_ns * 1000.0,
        clock_uw=clock_pj / window_ns * 1000.0,
        leakage_uw=leakage_uw,
        activity_factor=monitor.activity_factor(),
        cycles=cycles,
    )
