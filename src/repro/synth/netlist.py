"""Gate-level netlists.

A :class:`Netlist` is a flat sea of library-cell instances connected by
:class:`Net` objects, plus memory macros (kept as black boxes, excluded
from the area report, and replaced by behavioural models in simulation).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .library import DEFAULT_LIBRARY, Library


class NetlistError(ValueError):
    """Raised for malformed netlists."""


class Net:
    """A single-bit wire.  ``driver`` is the (cell, output pin) pair, a
    primary input, a constant, or a memory data pin."""

    __slots__ = ("uid", "name", "driver", "kind")

    def __init__(self, uid: int, name: Optional[str] = None):
        self.uid = uid
        self.name = name or f"n{uid}"
        #: one of 'cell', 'input', 'const0', 'const1', 'mem', None
        self.kind: Optional[str] = None
        self.driver: Optional[Tuple["CellInstance", str]] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Net({self.name})"


class CellInstance:
    """An instance of a library cell."""

    __slots__ = ("name", "cell_type", "pins", "outputs", "init", "keep")

    def __init__(self, name: str, cell_type: str,
                 pins: Dict[str, Net], outputs: Dict[str, Net],
                 init: int = 0, keep: bool = False):
        self.name = name
        self.cell_type = cell_type
        self.pins = pins          # input pin -> net
        self.outputs = outputs    # output pin -> net
        self.init = init          # power-up value for flops
        self.keep = keep          # dont-touch: exempt from merging

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.cell_type}:{self.name}"


@dataclass
class MemReadMacroPort:
    addr: List[Net]
    data: List[Net]
    enable: Optional[Net]


@dataclass
class MemWriteMacroPort:
    enable: Net
    addr: List[Net]
    data: List[Net]


@dataclass(eq=False)
class MemoryMacro:
    """A memory block box (RAM or ROM).  Identity-hashed (``eq=False``)
    so macros can key dictionaries in the gate simulator."""

    name: str
    depth: int
    width: int
    contents: Optional[List[int]]
    read_ports: List[MemReadMacroPort] = field(default_factory=list)
    write_ports: List[MemWriteMacroPort] = field(default_factory=list)

    @property
    def writable(self) -> bool:
        return self.contents is None


class Netlist:
    """A flat gate-level design."""

    def __init__(self, name: str, library: Library = DEFAULT_LIBRARY):
        self.name = name
        self.library = library
        self.nets: List[Net] = []
        self.cells: List[CellInstance] = []
        self.memories: List[MemoryMacro] = []
        self.inputs: Dict[str, List[Net]] = {}
        self.outputs: Dict[str, List[Net]] = {}
        self._uid = itertools.count()
        self._cell_uid = itertools.count()
        self.const0 = self.new_net("const0")
        self.const0.kind = "const0"
        self.const1 = self.new_net("const1")
        self.const1.kind = "const1"
        #: scan-chain order (flop instances), set by scan insertion
        self.scan_chain: List[CellInstance] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def new_net(self, name: Optional[str] = None) -> Net:
        net = Net(next(self._uid), name)
        self.nets.append(net)
        return net

    def new_nets(self, count: int, prefix: str = "n") -> List[Net]:
        return [self.new_net(f"{prefix}.{i}") for i in range(count)]

    def add_input(self, name: str, width: int) -> List[Net]:
        if name in self.inputs:
            raise NetlistError(f"input {name!r} already exists")
        nets = self.new_nets(width, name)
        for net in nets:
            net.kind = "input"
        self.inputs[name] = nets
        return nets

    def set_output(self, name: str, nets: Sequence[Net]) -> None:
        if name in self.outputs:
            raise NetlistError(f"output {name!r} already exists")
        self.outputs[name] = list(nets)

    def add_cell(self, cell_type: str, pins: Dict[str, Net],
                 init: int = 0) -> CellInstance:
        """Instantiate *cell_type*; returns the instance with fresh output
        nets wired (single-output cells expose ``.out``)."""
        cell = self.library[cell_type]
        missing = set(cell.inputs) - set(pins)
        if missing:
            raise NetlistError(
                f"{cell_type} instance missing pins {sorted(missing)}"
            )
        outputs = {}
        for pin in cell.outputs:
            net = self.new_net()
            outputs[pin] = net
        inst = CellInstance(
            f"u{next(self._cell_uid)}", cell_type, dict(pins), outputs, init
        )
        for pin, net in outputs.items():
            net.kind = "cell"
            net.driver = (inst, pin)
        self.cells.append(inst)
        return inst

    def add_memory(self, name: str, depth: int, width: int,
                   contents: Optional[Sequence[int]] = None) -> MemoryMacro:
        if any(m.name == name for m in self.memories):
            raise NetlistError(f"memory {name!r} already exists")
        macro = MemoryMacro(
            name, depth, width,
            list(contents) if contents is not None else None,
        )
        self.memories.append(macro)
        return macro

    def add_mem_read_port(self, macro: MemoryMacro, addr: Sequence[Net],
                          enable: Optional[Net] = None) -> List[Net]:
        data = self.new_nets(macro.width, f"{macro.name}.rd")
        for net in data:
            net.kind = "mem"
        macro.read_ports.append(
            MemReadMacroPort(list(addr), data, enable)
        )
        return data

    def add_mem_write_port(self, macro: MemoryMacro, enable: Net,
                           addr: Sequence[Net],
                           data: Sequence[Net]) -> None:
        if not macro.writable:
            raise NetlistError(f"memory {macro.name!r} is a ROM")
        macro.write_ports.append(
            MemWriteMacroPort(enable, list(addr), list(data))
        )

    def clone(self, name: Optional[str] = None) -> "Netlist":
        """A deep structural copy, preserving net uids and cell names.

        With *name* unset the clone hashes identically to the original
        (see :func:`repro.gatesim.compiled.structural_hash`); pass a new
        name to key overlay variants -- e.g. fault-injection saboteur
        netlists -- distinctly in the compile cache.  Mutating the clone
        (rewiring pins, swapping cell types, inserting cells) never
        touches the original.
        """
        dup = Netlist.__new__(Netlist)
        dup.name = name if name is not None else self.name
        dup.library = self.library
        dup.nets = []
        net_map: Dict[Net, Net] = {}
        max_uid = -1
        for net in self.nets:
            copy = Net(net.uid, net.name)
            copy.kind = net.kind
            dup.nets.append(copy)
            net_map[net] = copy
            max_uid = max(max_uid, net.uid)
        dup.const0 = net_map[self.const0]
        dup.const1 = net_map[self.const1]
        cell_map: Dict[CellInstance, CellInstance] = {}
        dup.cells = []
        for cell in self.cells:
            copy_cell = CellInstance(
                cell.name, cell.cell_type,
                {pin: net_map[n] for pin, n in cell.pins.items()},
                {pin: net_map[n] for pin, n in cell.outputs.items()},
                cell.init, keep=cell.keep,
            )
            for pin, net in copy_cell.outputs.items():
                net.driver = (copy_cell, pin)
            dup.cells.append(copy_cell)
            cell_map[cell] = copy_cell
        dup.memories = []
        for macro in self.memories:
            copy_macro = MemoryMacro(
                macro.name, macro.depth, macro.width,
                list(macro.contents) if macro.contents is not None
                else None,
                [MemReadMacroPort([net_map[n] for n in rp.addr],
                                  [net_map[n] for n in rp.data],
                                  net_map[rp.enable]
                                  if rp.enable is not None else None)
                 for rp in macro.read_ports],
                [MemWriteMacroPort(net_map[wp.enable],
                                   [net_map[n] for n in wp.addr],
                                   [net_map[n] for n in wp.data])
                 for wp in macro.write_ports],
            )
            dup.memories.append(copy_macro)
        dup.inputs = {port: [net_map[n] for n in nets]
                      for port, nets in self.inputs.items()}
        dup.outputs = {port: [net_map[n] for n in nets]
                       for port, nets in self.outputs.items()}
        dup.scan_chain = [cell_map[c] for c in self.scan_chain]
        dup._uid = itertools.count(max_uid + 1)
        max_cell = -1
        for cell in self.cells:
            if cell.name.startswith("u") and cell.name[1:].isdigit():
                max_cell = max(max_cell, int(cell.name[1:]))
        dup._cell_uid = itertools.count(max_cell + 1)
        return dup

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def flops(self) -> List[CellInstance]:
        return [c for c in self.cells
                if self.library[c.cell_type].sequential]

    def combinational_cells(self) -> List[CellInstance]:
        return [c for c in self.cells
                if not self.library[c.cell_type].sequential]

    def cell_histogram(self) -> Dict[str, int]:
        hist: Dict[str, int] = {}
        for cell in self.cells:
            hist[cell.cell_type] = hist.get(cell.cell_type, 0) + 1
        return hist

    def fanout_index(self) -> Dict[Net, List[Tuple[CellInstance, str]]]:
        """Map each net to the (cell, input pin) loads it drives."""
        index: Dict[Net, List[Tuple[CellInstance, str]]] = {}
        for cell in self.cells:
            for pin, net in cell.pins.items():
                index.setdefault(net, []).append((cell, pin))
        return index

    def validate(self) -> None:
        """Every cell input must be driven; outputs must exist."""
        driven = {self.const0, self.const1}
        for nets in self.inputs.values():
            driven.update(nets)
        for cell in self.cells:
            driven.update(cell.outputs.values())
        for macro in self.memories:
            for rp in macro.read_ports:
                driven.update(rp.data)
        for cell in self.cells:
            for pin, net in cell.pins.items():
                if net not in driven:
                    raise NetlistError(
                        f"undriven net {net.name!r} at {cell.name}.{pin}"
                    )
        for name, nets in self.outputs.items():
            for net in nets:
                if net not in driven:
                    raise NetlistError(
                        f"output {name!r} contains undriven net {net.name!r}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Netlist({self.name!r}: {len(self.cells)} cells, "
            f"{len(self.nets)} nets, {len(self.memories)} memories)"
        )
