"""Static timing analysis over the gate netlist.

Computes the longest combinational path (register/input -> register/
output) using per-cell worst-case delays, and checks it against the
clock constraint (the paper's fixed 40 ns).  Memory macros contribute a
fixed access delay on their read paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .netlist import CellInstance, Net, Netlist

#: modelled asynchronous RAM/ROM access time (ns)
MEMORY_ACCESS_NS = 2.5
#: flop clock-to-Q (ns)
CLK_TO_Q_NS = 0.45
#: flop setup time (ns)
SETUP_NS = 0.25


@dataclass
class TimingReport:
    design: str
    critical_path_ns: float
    clock_ns: float
    #: nets on the critical path, source first
    path: List[str]

    @property
    def slack_ns(self) -> float:
        return self.clock_ns - self.critical_path_ns

    @property
    def met(self) -> bool:
        return self.slack_ns >= 0.0

    def format(self) -> str:
        status = "MET" if self.met else "VIOLATED"
        return (
            f"Timing report for {self.design}\n"
            f"  clock period  : {self.clock_ns:8.2f} ns\n"
            f"  critical path : {self.critical_path_ns:8.2f} ns\n"
            f"  slack         : {self.slack_ns:8.2f} ns  ({status})"
        )


def _levelize(netlist: Netlist) -> List[CellInstance]:
    """Combinational cells in topological order (flops are sources)."""
    lib = netlist.library
    comb = [c for c in netlist.cells if not lib[c.cell_type].sequential]
    driver_of: Dict[Net, CellInstance] = {}
    for cell in comb:
        for net in cell.outputs.values():
            driver_of[net] = cell
    order: List[CellInstance] = []
    state: Dict[CellInstance, int] = {}

    for root in comb:
        stack: List[Tuple[CellInstance, bool]] = [(root, False)]
        while stack:
            cell, expanded = stack.pop()
            mark = state.get(cell)
            if mark == 2:
                continue
            if expanded:
                state[cell] = 2
                order.append(cell)
                continue
            if mark == 1:
                raise ValueError(
                    f"combinational loop through {cell.name}"
                )
            state[cell] = 1
            stack.append((cell, True))
            for net in cell.pins.values():
                dep = driver_of.get(net)
                if dep is not None and state.get(dep) != 2:
                    stack.append((dep, False))
    return order


def report_timing(netlist: Netlist, clock_ns: float,
                  design_name: Optional[str] = None) -> TimingReport:
    """Longest-path analysis of *netlist* against *clock_ns*."""
    lib = netlist.library
    arrival: Dict[Net, float] = {}
    pred: Dict[Net, Optional[Net]] = {}

    def seed(net: Net, t: float) -> None:
        if arrival.get(net, -1.0) < t:
            arrival[net] = t
            pred[net] = None

    seed(netlist.const0, 0.0)
    seed(netlist.const1, 0.0)
    for nets in netlist.inputs.values():
        for net in nets:
            seed(net, 0.0)
    for cell in netlist.flops():
        for net in cell.outputs.values():
            seed(net, CLK_TO_Q_NS)
    for macro in netlist.memories:
        # Read data lags the slowest address bit by the access time; the
        # address itself is combinational, so resolve after levelisation.
        pass

    order = _levelize(netlist)

    # Memory read data nets depend on address nets, which are driven by
    # combinational cells.  Handle by iterating: first assume access time
    # from t=0, then refine once all cell arrivals are known.
    for _ in range(2):
        for macro in netlist.memories:
            for rp in macro.read_ports:
                addr_t = max(
                    (arrival.get(n, 0.0) for n in rp.addr), default=0.0
                )
                worst_addr = None
                for n in rp.addr:
                    if arrival.get(n, 0.0) == addr_t:
                        worst_addr = n
                        break
                for net in rp.data:
                    if arrival.get(net, -1.0) < addr_t + MEMORY_ACCESS_NS:
                        arrival[net] = addr_t + MEMORY_ACCESS_NS
                        pred[net] = worst_addr
        for cell in order:
            delay = lib[cell.cell_type].delay_ns
            in_t = 0.0
            worst = None
            for net in cell.pins.values():
                t = arrival.get(net, 0.0)
                if t >= in_t:
                    in_t = t
                    worst = net
            for net in cell.outputs.values():
                if arrival.get(net, -1.0) < in_t + delay:
                    arrival[net] = in_t + delay
                    pred[net] = worst

    # endpoints: flop D pins (+ setup), outputs, memory write/addr pins
    best_t = 0.0
    best_net: Optional[Net] = None
    for cell in netlist.flops():
        for net in cell.pins.values():
            t = arrival.get(net, 0.0) + SETUP_NS
            if t > best_t:
                best_t, best_net = t, net
    for nets in netlist.outputs.values():
        for net in nets:
            t = arrival.get(net, 0.0)
            if t > best_t:
                best_t, best_net = t, net
    for macro in netlist.memories:
        pins: List[Net] = []
        for rp in macro.read_ports:
            pins.extend(rp.addr)
        for wp in macro.write_ports:
            pins.extend([wp.enable, *wp.addr, *wp.data])
        for net in pins:
            t = arrival.get(net, 0.0) + SETUP_NS
            if t > best_t:
                best_t, best_net = t, net

    path: List[str] = []
    net = best_net
    while net is not None:
        path.append(net.name)
        net = pred.get(net)
    path.reverse()

    return TimingReport(
        design=design_name or netlist.name,
        critical_path_ns=best_t,
        clock_ns=clock_ns,
        path=path,
    )
