"""Generic 0.25 um-style standard-cell library.

Areas are in *gate equivalents* (NAND2 = 1.0), the unit `report_area`
aggregates; delays are worst-case pin-to-pin in nanoseconds, loosely
modelled on a 0.25 um CMOS process.  Absolute values only matter
relatively -- the paper's Figure 10 normalises all areas to the VHDL
reference design.

Each combinational cell carries an evaluation function over 4-valued
logic (for the gate-level simulator) and over plain ints (for mapping-
time constant folding).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

from ..datatypes import logic as L


@dataclass(frozen=True)
class Cell:
    """One library cell."""

    name: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    area: float
    delay_ns: float
    sequential: bool = False

    @property
    def n_inputs(self) -> int:
        return len(self.inputs)


def _and2(a, b):
    return L.logic_and(a, b)


def _or2(a, b):
    return L.logic_or(a, b)


def _xor2(a, b):
    return L.logic_xor(a, b)


def _inv(a):
    return L.logic_not(a)


def _nand2(a, b):
    return L.logic_not(L.logic_and(a, b))


def _nor2(a, b):
    return L.logic_not(L.logic_or(a, b))


def _xnor2(a, b):
    return L.logic_not(L.logic_xor(a, b))


def _buf(a):
    return a


def _mux2(s, a, b):
    """Output pin Y = b when s else a."""
    return L.logic_mux(s, a, b)


def _fa_sum(a, b, cin):
    return L.logic_xor(L.logic_xor(a, b), cin)


def _fa_carry(a, b, cin):
    return L.logic_or(
        L.logic_and(a, b),
        L.logic_or(L.logic_and(a, cin), L.logic_and(b, cin)),
    )


def _ha_sum(a, b):
    return L.logic_xor(a, b)


def _ha_carry(a, b):
    return L.logic_and(a, b)


#: combinational evaluation functions, keyed by (cell name, output pin)
EVAL: Dict[Tuple[str, str], Callable] = {
    ("INV", "Y"): _inv,
    ("BUF", "Y"): _buf,
    ("NAND2", "Y"): _nand2,
    ("NOR2", "Y"): _nor2,
    ("AND2", "Y"): _and2,
    ("OR2", "Y"): _or2,
    ("XOR2", "Y"): _xor2,
    ("XNOR2", "Y"): _xnor2,
    ("MUX2", "Y"): _mux2,
    ("FA", "S"): _fa_sum,
    ("FA", "CO"): _fa_carry,
    ("HA", "S"): _ha_sum,
    ("HA", "CO"): _ha_carry,
}


# ----------------------------------------------------------------------
# word-level codegen templates for the compiled parallel-pattern backend
# ----------------------------------------------------------------------
#
# The compiled gate simulator (:mod:`repro.gatesim.compiled`) encodes a
# net as two integer bitplanes: ``a`` holds the bits that are known 1,
# ``x`` the bits that are unknown (X/Z); bit *p* of a plane belongs to
# stimulus pattern *p*.  The planes are disjoint (``a & x == 0``) and
# both lie inside the pattern mask ``M``.  Each template receives the
# output plane names, the input plane-name pairs (in ``Cell.inputs``
# order) and a unique temp-name prefix, and returns Python source lines
# computing the cell over all patterns at once with plain int ops.

def _cg_lines(fn):
    """Wrap an expression-pair template into a line-list template."""

    def template(out, ins, tmp):
        e1, ex = fn(*ins)
        return [f"{out[0]} = {e1}", f"{out[1]} = {ex}"]

    return template


def _cg_inv(a):
    return (f"M&~({a[0]}|{a[1]})", a[1])


def _cg_buf(a):
    return (a[0], a[1])


def _cg_and2(a, b):
    return (f"{a[0]}&{b[0]}",
            f"({a[1]}|{b[1]})&({a[0]}|{a[1]})&({b[0]}|{b[1]})")


def _cg_or2(a, b):
    return (f"{a[0]}|{b[0]}",
            f"({a[1]}|{b[1]})&~({a[0]}|{b[0]})")


def _cg_xor2(a, b):
    return (f"({a[0]}^{b[0]})&~({a[1]}|{b[1]})", f"{a[1]}|{b[1]}")


def _cg_nand2(a, b):
    return (f"M&(~({a[0]}|{a[1]})|~({b[0]}|{b[1]}))",
            f"({a[1]}|{b[1]})&({a[0]}|{a[1]})&({b[0]}|{b[1]})")


def _cg_nor2(a, b):
    return (f"M&~({a[0]}|{a[1]}|{b[0]}|{b[1]})",
            f"({a[1]}|{b[1]})&~({a[0]}|{b[0]})")


def _cg_xnor2(a, b):
    return (f"M&~({a[0]}^{b[0]})&~({a[1]}|{b[1]})", f"{a[1]}|{b[1]}")


def _cg_mux2(out, ins, tmp):
    """Y = B when S else A; X-select resolves only when A and B agree."""
    s, a, b = ins
    t0 = f"{tmp}s0"
    return [
        f"{t0} = ~({s[0]}|{s[1]})",
        f"{out[0]} = {t0}&{a[0]} | {s[0]}&{b[0]} | {s[1]}&{a[0]}&{b[0]}",
        f"{out[1]} = {t0}&{a[1]} | {s[0]}&{b[1]} | "
        f"{s[1]}&~({a[0]}&{b[0]} | M&~({a[0]}|{a[1]}|{b[0]}|{b[1]}))",
    ]


def _cg_ha_sum(a, b):
    return _cg_xor2(a, b)


def _cg_ha_carry(a, b):
    return _cg_and2(a, b)


def _cg_fa_sum(a, b, c):
    return (f"({a[0]}^{b[0]}^{c[0]})&~({a[1]}|{b[1]}|{c[1]})",
            f"{a[1]}|{b[1]}|{c[1]}")


def _cg_fa_carry(out, ins, tmp):
    """Majority carry: known when two inputs agree on a known value."""
    a, b, c = ins
    ta, tb, tc = f"{tmp}a0", f"{tmp}b0", f"{tmp}c0"
    return [
        f"{ta} = M&~({a[0]}|{a[1]})",
        f"{tb} = M&~({b[0]}|{b[1]})",
        f"{tc} = M&~({c[0]}|{c[1]})",
        f"{out[0]} = {a[0]}&{b[0]} | {a[0]}&{c[0]} | {b[0]}&{c[0]}",
        f"{out[1]} = M&~({out[0]} | {ta}&{tb} | {ta}&{tc} | {tb}&{tc})",
    ]


#: codegen templates, keyed by (cell name, output pin) like EVAL
CODEGEN: Dict[Tuple[str, str], Callable] = {
    ("INV", "Y"): _cg_lines(_cg_inv),
    ("BUF", "Y"): _cg_lines(_cg_buf),
    ("NAND2", "Y"): _cg_lines(_cg_nand2),
    ("NOR2", "Y"): _cg_lines(_cg_nor2),
    ("AND2", "Y"): _cg_lines(_cg_and2),
    ("OR2", "Y"): _cg_lines(_cg_or2),
    ("XOR2", "Y"): _cg_lines(_cg_xor2),
    ("XNOR2", "Y"): _cg_lines(_cg_xnor2),
    ("MUX2", "Y"): _cg_mux2,
    ("FA", "S"): _cg_lines(_cg_fa_sum),
    ("FA", "CO"): _cg_fa_carry,
    ("HA", "S"): _cg_lines(_cg_ha_sum),
    ("HA", "CO"): _cg_lines(_cg_ha_carry),
}


class Library:
    """A named collection of cells with lookup helpers."""

    def __init__(self, name: str, cells: Sequence[Cell]):
        self.name = name
        self.cells: Dict[str, Cell] = {c.name: c for c in cells}

    def __getitem__(self, name: str) -> Cell:
        return self.cells[name]

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def area_of(self, name: str) -> float:
        return self.cells[name].area

    def delay_of(self, name: str) -> float:
        return self.cells[name].delay_ns

    def evaluate(self, cell_name: str, output: str, *values: int) -> int:
        """Evaluate a combinational cell output over 4-valued inputs."""
        return EVAL[(cell_name, output)](*values)


def generic_025um() -> Library:
    """The default library: generic 0.25 um CMOS standard cells."""
    cells = [
        Cell("INV", ("A",), ("Y",), area=0.7, delay_ns=0.08),
        Cell("BUF", ("A",), ("Y",), area=1.0, delay_ns=0.12),
        Cell("NAND2", ("A", "B"), ("Y",), area=1.0, delay_ns=0.10),
        Cell("NOR2", ("A", "B"), ("Y",), area=1.0, delay_ns=0.12),
        Cell("AND2", ("A", "B"), ("Y",), area=1.3, delay_ns=0.15),
        Cell("OR2", ("A", "B"), ("Y",), area=1.3, delay_ns=0.16),
        Cell("XOR2", ("A", "B"), ("Y",), area=2.2, delay_ns=0.20),
        Cell("XNOR2", ("A", "B"), ("Y",), area=2.2, delay_ns=0.20),
        # MUX2: Y = S ? B : A
        Cell("MUX2", ("S", "A", "B"), ("Y",), area=2.2, delay_ns=0.18),
        Cell("FA", ("A", "B", "CI"), ("S", "CO"), area=6.5, delay_ns=0.35),
        Cell("HA", ("A", "B"), ("S", "CO"), area=3.5, delay_ns=0.22),
        # D flip-flop with synchronous load; init handled by the simulator
        Cell("DFF", ("D",), ("Q",), area=5.5, delay_ns=0.45,
             sequential=True),
        # Scan flop: D/SI muxed by SE inside the cell
        Cell("SDFF", ("D", "SI", "SE"), ("Q",), area=7.0, delay_ns=0.50,
             sequential=True),
    ]
    return Library("generic_025um", cells)


#: process-wide default library instance
DEFAULT_LIBRARY = generic_025um()
