"""Unified observability layer: span tracing and a metrics registry.

``repro.obs`` is deliberately a *leaf* package -- it imports nothing
from the rest of ``repro`` at module level, so the kernel, the flow,
the verification harness, the FI runner and the campaign service can
all hook into it without creating import cycles.

Two halves:

``repro.obs.trace``
    A span-based structured tracer.  Pipeline stages wrap themselves in
    ``with span("synthesize", design=digest):`` context managers; spans
    are buffered per process and exported as Chrome trace-event JSON
    (loadable in ``chrome://tracing`` or https://ui.perfetto.dev).
    Trace/span ids propagate through ``parallel_map`` pools and service
    task payloads so worker spans nest under the parent campaign.
    When tracing is disabled (the default) every hook degrades to a
    single module-flag check returning a shared no-op span.

``repro.obs.metrics``
    A process-safe metrics registry (counters, gauges, fixed-bucket
    histograms) with snapshot/diff/merge semantics for cross-process
    aggregation and a Prometheus text-exposition renderer.
"""

from .trace import (  # noqa: F401
    TracedTask,
    absorb_events,
    adopt_context,
    current_context,
    disable_tracing,
    enable_tracing,
    event_mark,
    events_since,
    record_span,
    span,
    stage_summary,
    format_stage_table,
    trace_events,
    tracing_enabled,
    write_chrome_trace,
)
from .metrics import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    LatencyHistogram,
    MetricsRegistry,
    REGISTRY,
    KERNEL_STATS,
    record_kernel_stats,
    render_prometheus,
)
