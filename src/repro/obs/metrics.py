"""Process-safe metrics registry with Prometheus text exposition.

One API absorbs the counters that previously lived scattered across
the pipeline: per-backend CompileCache hit/miss/eviction counts, FI
outcome tallies, kernel scheduler delta/activation counts, service
worker crash/hang/retire/respawn counts, queue depth and job latency.

Cross-process model: worker processes mutate their own (forked or
fresh) registry, take ``snapshot()`` before/after a task, and ship
``diff(before, after)`` back with the result; the parent folds it in
with ``merge()``.  The same snapshot/diff/merge triple backs the
campaign service's ``"_metrics"`` result key and keeps hot paths free
of any cross-process synchronisation.

External totals (the compile caches, the kernel) are *pulled* at
snapshot/render time through registered collector callbacks instead of
being double-counted on their own hot paths.
"""

from __future__ import annotations

import json
import re
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter", "Gauge", "Histogram", "LatencyHistogram",
    "MetricsRegistry", "REGISTRY", "KERNEL_STATS", "record_kernel_stats",
    "render_prometheus",
]

#: cumulative kernel scheduler totals for this process:
#: ``[delta_cycles, process_activations]``.  ``Simulation.run`` folds
#: its per-run counts in here (one pair of integer adds per ``run()``
#: call); the default collector mirrors them into the registry.
KERNEL_STATS = [0, 0]


def record_kernel_stats(deltas: int, activations: int) -> None:
    """Fold one simulation's scheduler counts into the process totals."""
    KERNEL_STATS[0] += deltas
    KERNEL_STATS[1] += activations


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def set_total(self, value: float) -> None:
        """Mirror an externally maintained total (collector use only)."""
        self.value = value


class Gauge:
    """A point-in-time value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1) -> None:
        self.value += n


class Histogram:
    """Fixed upper-bound bucket histogram (Prometheus ``le`` style).

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    everything above the last bound.  ``buckets`` stores per-bucket
    counts (not cumulative) -- the Prometheus renderer accumulates.
    """

    __slots__ = ("bounds", "buckets", "count", "sum")

    BOUNDS: Tuple[float, ...] = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
                                 5.0, 15.0, 60.0, 300.0)

    def __init__(self, bounds: Optional[Iterable[float]] = None):
        self.bounds = tuple(bounds) if bounds is not None else self.BOUNDS
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def merge(self, other: "Histogram") -> None:
        if tuple(other.bounds) != self.bounds:
            raise ValueError("histogram bucket bounds differ")
        self.count += other.count
        self.sum += other.sum
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n

    def bucket_labels(self) -> List[str]:
        return [f"le_{b:g}" for b in self.bounds] + ["le_inf"]

    def state(self) -> Dict[str, Any]:
        """JSON-able internal state for snapshot/diff/merge."""
        return {"bounds": list(self.bounds), "count": self.count,
                "sum": self.sum, "buckets": list(self.buckets)}

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "Histogram":
        hist = cls(state["bounds"])
        hist.count = state["count"]
        hist.sum = state["sum"]
        hist.buckets = list(state["buckets"])
        return hist


class LatencyHistogram(Histogram):
    """Job-latency histogram with the service's reporting schema.

    Kept import-compatible with its original home
    (``repro.service.core.LatencyHistogram``); ``as_dict()`` is the
    shape locked by the service metrics schema tests.
    """

    __slots__ = ()

    def as_dict(self) -> Dict[str, Any]:
        labels = self.bucket_labels()
        return {
            "count": self.count,
            "sum_seconds": round(self.sum, 6),
            "buckets": {labels[i]: self.buckets[i]
                        for i in range(len(labels))},
        }


_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    return _NAME_RE.sub("_", name)


def _prom_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value != int(value):
        return repr(value)
    return str(int(value))


def _label_str(labels: Dict[str, Any]) -> str:
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        value = str(labels[key]).replace("\\", r"\\").replace(
            '"', r"\"").replace("\n", r"\n")
        parts.append(f'{_prom_name(str(key))}="{value}"')
    return "{" + ",".join(parts) + "}"


def render_prometheus(families: Iterable[Tuple[str, str, str, list]]) -> str:
    """Render ``(name, type, help, [(labels, value), ...])`` families
    as Prometheus text exposition format (version 0.0.4).

    ``value`` is numeric for counters/gauges and a :class:`Histogram`
    for histogram families (rendered as cumulative ``_bucket`` samples
    plus ``_sum`` and ``_count``).
    """
    lines: List[str] = []
    for name, mtype, help_text, samples in families:
        name = _prom_name(name)
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {mtype}")
        for labels, value in samples:
            label_str = _label_str(labels)
            if mtype == "histogram":
                cumulative = 0
                for i, bound in enumerate(value.bounds):
                    cumulative += value.buckets[i]
                    le = dict(labels, le=f"{bound:g}")
                    lines.append(
                        f"{name}_bucket{_label_str(le)} {cumulative}")
                cumulative += value.buckets[-1]
                le = dict(labels, le="+Inf")
                lines.append(f"{name}_bucket{_label_str(le)} {cumulative}")
                lines.append(
                    f"{name}_sum{label_str} {_prom_value(value.sum)}")
                lines.append(f"{name}_count{label_str} {value.count}")
            else:
                lines.append(f"{name}{label_str} {_prom_value(value)}")
    return "\n".join(lines) + "\n"


def _metric_key(name: str, labels: Dict[str, Any]) -> str:
    if not labels:
        return name
    return name + "|" + json.dumps(
        {k: str(v) for k, v in sorted(labels.items())}, sort_keys=True)


def _split_key(key: str) -> Tuple[str, Dict[str, str]]:
    if "|" not in key:
        return key, {}
    name, raw = key.split("|", 1)
    return name, json.loads(raw)


class MetricsRegistry:
    """Get-or-create registry of labelled counters, gauges and
    histograms with snapshot/diff/merge for cross-process use."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._meta: Dict[str, Tuple[str, str]] = {}  # name -> (type, help)
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # -- get-or-create -------------------------------------------------
    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        key = _metric_key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
            self._meta.setdefault(name, ("counter", help))
        return metric

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        key = _metric_key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
            self._meta.setdefault(name, ("gauge", help))
        return metric

    def histogram(self, name: str, bounds: Optional[Iterable[float]] = None,
                  help: str = "", **labels: Any) -> Histogram:
        key = _metric_key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = LatencyHistogram(bounds)
            self._meta.setdefault(name, ("histogram", help))
        return metric

    def register_collector(
            self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback that refreshes pulled metrics (compile
        caches, kernel totals) before every snapshot/render."""
        if fn not in self._collectors:
            self._collectors.append(fn)

    def _run_collectors(self) -> None:
        for fn in self._collectors:
            fn(self)

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._meta.clear()

    # -- cross-process aggregation ------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-able state of every metric (collectors refreshed)."""
        self._run_collectors()
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {k: g.value for k, g in self._gauges.items()},
            "histograms": {k: h.state()
                           for k, h in self._histograms.items()},
            "meta": {name: list(meta) for name, meta in self._meta.items()},
        }

    @staticmethod
    def diff(before: Dict[str, Any], after: Dict[str, Any],
             ) -> Dict[str, Any]:
        """The monotonic delta between two snapshots -- what one task
        contributed, safe to merge into another process's registry."""
        counters = {}
        for key, value in after.get("counters", {}).items():
            delta = value - before.get("counters", {}).get(key, 0)
            if delta:
                counters[key] = delta
        histograms = {}
        for key, state in after.get("histograms", {}).items():
            prev = before.get("histograms", {}).get(key)
            if prev is None:
                if state["count"]:
                    histograms[key] = state
                continue
            if state["count"] == prev["count"]:
                continue
            histograms[key] = {
                "bounds": state["bounds"],
                "count": state["count"] - prev["count"],
                "sum": state["sum"] - prev["sum"],
                "buckets": [a - b for a, b in zip(state["buckets"],
                                                  prev["buckets"])],
            }
        gauges = dict(after.get("gauges", {}))
        delta = {}
        if counters:
            delta["counters"] = counters
        if histograms:
            delta["histograms"] = histograms
        if gauges:
            delta["gauges"] = gauges
        if delta:
            delta["meta"] = after.get("meta", {})
        return delta

    def merge(self, delta: Dict[str, Any]) -> None:
        """Fold a snapshot or diff from another process into this
        registry: counters and histograms add, gauges overwrite.

        Collector-mirrored families are routed to their underlying
        source (or dropped when they ship over a dedicated channel,
        like the compile caches) so the next collector run does not
        overwrite or double-count the merged values.
        """
        if not delta:
            return
        meta = delta.get("meta", {})
        for key, value in delta.get("counters", {}).items():
            name, labels = _split_key(key)
            if name in _MERGE_SINKS:
                sink = _MERGE_SINKS[name]
                if sink is not None:
                    sink(value)
                continue
            self._meta.setdefault(name, tuple(meta.get(name, ("counter", ""))))
            self.counter(name, **labels).inc(value)
        for key, value in delta.get("gauges", {}).items():
            name, labels = _split_key(key)
            self._meta.setdefault(name, tuple(meta.get(name, ("gauge", ""))))
            self.gauge(name, **labels).set(value)
        for key, state in delta.get("histograms", {}).items():
            name, labels = _split_key(key)
            self._meta.setdefault(
                name, tuple(meta.get(name, ("histogram", ""))))
            self.histogram(name, bounds=state["bounds"], **labels).merge(
                Histogram.from_state(state))

    # -- rendering -----------------------------------------------------
    def families(self) -> List[Tuple[str, str, str, list]]:
        """Registry contents grouped per metric family for rendering."""
        self._run_collectors()
        grouped: Dict[str, list] = {}
        for store in (self._counters, self._gauges, self._histograms):
            for key, metric in store.items():
                name, labels = _split_key(key)
                value = metric if isinstance(metric, Histogram) \
                    else metric.value
                grouped.setdefault(name, []).append((labels, value))
        return [(name, *self._meta.get(name, ("gauge", "")), samples)
                for name, samples in sorted(grouped.items())]

    def to_prometheus(self) -> str:
        return render_prometheus(self.families())


def _sink_kernel_deltas(value: float) -> None:
    KERNEL_STATS[0] += int(value)


def _sink_kernel_activations(value: float) -> None:
    KERNEL_STATS[1] += int(value)


#: where merged counters from *mirrored* families land.  ``None``
#: means "drop": the compile-cache families travel over the dedicated
#: cache-delta channel (``repro.compile_cache.counters_delta``) and
#: would double-count if also merged here.
_MERGE_SINKS: Dict[str, Optional[Callable[[float], None]]] = {
    "repro_kernel_delta_cycles_total": _sink_kernel_deltas,
    "repro_kernel_activations_total": _sink_kernel_activations,
    "repro_compile_cache_hits_total": None,
    "repro_compile_cache_misses_total": None,
    "repro_compile_cache_evictions_total": None,
}

#: the process-wide default registry
REGISTRY = MetricsRegistry()


def _kernel_collector(registry: MetricsRegistry) -> None:
    registry.counter(
        "repro_kernel_delta_cycles_total",
        help="Scheduler delta cycles executed").set_total(KERNEL_STATS[0])
    registry.counter(
        "repro_kernel_activations_total",
        help="Process activations executed by the scheduler").set_total(
            KERNEL_STATS[1])


def _compile_cache_collector(registry: MetricsRegistry) -> None:
    try:
        from ..compile_cache import iter_caches
    except ImportError:  # pragma: no cover - leaf-safety guard
        return
    for label, cache in iter_caches():
        for backend, stats in cache.stats_by_backend.items():
            labels = {"cache": label, "backend": backend}
            registry.counter(
                "repro_compile_cache_hits_total",
                help="CompileCache hits", **labels).set_total(stats.hits)
            registry.counter(
                "repro_compile_cache_misses_total",
                help="CompileCache misses", **labels).set_total(stats.misses)
            registry.counter(
                "repro_compile_cache_evictions_total",
                help="CompileCache LRU evictions",
                **labels).set_total(stats.evictions)


REGISTRY.register_collector(_kernel_collector)
REGISTRY.register_collector(_compile_cache_collector)
