"""Span-based structured tracing with Chrome trace-event export.

Design constraints, in priority order:

* **Disabled must be near-free.**  Every pipeline hook is
  ``with span("name", ...):`` -- when tracing is off that is one module
  flag check plus entering a shared no-op context manager.  No span is
  ever emitted from a per-cycle simulation loop; instrumentation lives
  at stage granularity (synthesize, verify case, FI batch, ...).

* **Fork-safe per-process buffering.**  Spans append to a module-level
  buffer tagged with the owning pid.  A pool worker forked mid-trace
  inherits the parent's buffer; the first span recorded (or context
  adopted) in the child detects the pid change and resets the buffer,
  so parent events are never shipped back twice.

* **Cross-process propagation without new call signatures.**
  ``current_context()`` captures the trace id and the innermost open
  span; ``TracedTask`` wraps a picklable task function so pool workers
  adopt the context and return ``(result, new_events)`` pairs that the
  parent unwraps with ``absorb_events``.  The campaign service ships
  the same context inside task payloads and returns events under a
  reserved ``"_spans"`` result key.

Timestamps are wall-clock microseconds (``time.time()``), so events
from forked or spawned workers land on a common axis; durations use
``time.perf_counter()`` for resolution.  Export normalises timestamps
to start near zero.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "span", "record_span", "tracing_enabled", "enable_tracing",
    "disable_tracing", "current_context", "adopt_context", "event_mark",
    "events_since", "absorb_events", "trace_events", "TracedTask",
    "write_chrome_trace", "stage_summary", "format_stage_table",
]

#: fast-path flag -- the only cost a disabled hook pays
_ENABLED = False

#: buffered Chrome trace events ("X" complete events) for this process
_EVENTS: List[Dict[str, Any]] = []

#: pid that owns the current buffer (fork detection)
_BUFFER_PID = 0

#: trace id shared by every process participating in one capture
_TRACE_ID = ""

_COUNTER = itertools.count(1)
_TLS = threading.local()


def _new_id() -> str:
    return f"{os.getpid():x}.{next(_COUNTER):x}"


def _parent_id() -> str:
    return getattr(_TLS, "parent", "")


def _reset_if_forked() -> None:
    """Drop an inherited buffer the first time a forked child records."""
    global _BUFFER_PID
    pid = os.getpid()
    if pid != _BUFFER_PID:
        del _EVENTS[:]
        _BUFFER_PID = pid


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def note(self, **attrs):
        return self


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("name", "attrs", "span_id", "parent", "_t0_wall", "_t0")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self.name = name
        self.attrs = attrs

    def note(self, **attrs):
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)
        return self

    def __enter__(self):
        _reset_if_forked()
        self.span_id = _new_id()
        self.parent = _parent_id()
        _TLS.parent = self.span_id
        self._t0_wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        dur = time.perf_counter() - self._t0
        _TLS.parent = self.parent
        args = {"trace_id": _TRACE_ID, "span_id": self.span_id}
        if self.parent:
            args["parent_id"] = self.parent
        for key, value in self.attrs.items():
            args[key] = value if isinstance(
                value, (str, int, float, bool, type(None))) else str(value)
        if exc_type is not None:
            args["error"] = exc_type.__name__
        _EVENTS.append({
            "name": self.name,
            "cat": "repro",
            "ph": "X",
            "ts": int(self._t0_wall * 1e6),
            "dur": max(int(dur * 1e6), 1),
            "pid": os.getpid(),
            "tid": threading.get_ident() % 2**31,
            "args": args,
        })
        return False


def span(name: str, **attrs: Any):
    """A context manager timing one pipeline stage.

    Returns a shared no-op object when tracing is disabled, so call
    sites never need their own enabled check.
    """
    if not _ENABLED:
        return _NULL_SPAN
    return _Span(name, attrs)


def record_span(name: str, t0_wall: float, t1_wall: float,
                **attrs: Any) -> None:
    """Record a span retroactively from wall-clock endpoints.

    Used where a stage's lifetime does not match any single call frame
    (e.g. a service job running across scheduler ticks).
    """
    if not _ENABLED:
        return
    _reset_if_forked()
    args = {"trace_id": _TRACE_ID, "span_id": _new_id()}
    parent = _parent_id()
    if parent:
        args["parent_id"] = parent
    for key, value in attrs.items():
        args[key] = value if isinstance(
            value, (str, int, float, bool, type(None))) else str(value)
    _EVENTS.append({
        "name": name,
        "cat": "repro",
        "ph": "X",
        "ts": int(t0_wall * 1e6),
        "dur": max(int((t1_wall - t0_wall) * 1e6), 1),
        "pid": os.getpid(),
        "tid": threading.get_ident() % 2**31,
        "args": args,
    })


def tracing_enabled() -> bool:
    return _ENABLED


def enable_tracing(trace_id: Optional[str] = None) -> str:
    """Turn tracing on for this process and start a fresh buffer."""
    global _ENABLED, _TRACE_ID, _BUFFER_PID
    _TRACE_ID = trace_id or f"t{os.getpid():x}.{int(time.time() * 1e3):x}"
    del _EVENTS[:]
    _BUFFER_PID = os.getpid()
    _TLS.parent = ""
    _ENABLED = True
    return _TRACE_ID


def disable_tracing() -> None:
    """Turn tracing off and drop the buffer -- export first."""
    global _ENABLED
    _ENABLED = False
    del _EVENTS[:]
    _TLS.parent = ""


def current_context() -> Optional[Dict[str, str]]:
    """The propagation payload for child processes, or None when off."""
    if not _ENABLED:
        return None
    return {"trace_id": _TRACE_ID, "parent": _parent_id()}


def adopt_context(ctx: Optional[Dict[str, str]]) -> None:
    """Join the capture described by *ctx* (a ``current_context()``
    payload shipped from the parent process)."""
    global _ENABLED, _TRACE_ID
    if not ctx:
        return
    _reset_if_forked()
    _TRACE_ID = ctx.get("trace_id", "")
    _TLS.parent = ctx.get("parent", "")
    _ENABLED = True


def event_mark() -> int:
    """Current buffer length; pair with :func:`events_since`."""
    _reset_if_forked()
    return len(_EVENTS)


def events_since(mark: int) -> List[Dict[str, Any]]:
    """Events recorded after *mark*, ready to ship to the parent."""
    return _EVENTS[mark:]


def absorb_events(events: Iterable[Dict[str, Any]]) -> None:
    """Fold events shipped back from a worker into this buffer."""
    if not events:
        return
    _reset_if_forked()
    _EVENTS.extend(events)


def trace_events() -> List[Dict[str, Any]]:
    """A snapshot of the buffered events (absorbed workers included)."""
    return list(_EVENTS)


class TracedTask:
    """Picklable wrapper propagating a trace context through a pool.

    ``parallel_map`` swaps the task function for ``TracedTask(fn, ctx)``
    when tracing is enabled; each call adopts the context in the worker
    and returns ``(result, new_events)`` so the parent can absorb the
    worker's spans.  The parent unwraps transparently -- callers of
    ``parallel_map`` are unchanged.
    """

    __slots__ = ("fn", "ctx")

    def __init__(self, fn, ctx: Dict[str, str]):
        self.fn = fn
        self.ctx = ctx

    def __call__(self, task) -> Tuple[Any, List[Dict[str, Any]]]:
        adopt_context(self.ctx)
        mark = event_mark()
        result = self.fn(task)
        return result, events_since(mark)


def write_chrome_trace(path: str) -> str:
    """Export the buffer as Chrome trace-event JSON and return *path*.

    The document loads directly in ``chrome://tracing`` and Perfetto;
    timestamps are shifted so the capture starts near zero, and each
    participating process gets a ``process_name`` metadata row.
    """
    events = sorted(_EVENTS, key=lambda e: (e["ts"], e["pid"]))
    base = events[0]["ts"] if events else 0
    out: List[Dict[str, Any]] = []
    seen_pids: List[int] = []
    for event in events:
        if event["pid"] not in seen_pids:
            seen_pids.append(event["pid"])
        shifted = dict(event)
        shifted["ts"] = event["ts"] - base
        out.append(shifted)
    meta = []
    for pid in seen_pids:
        label = "repro" if pid == os.getpid() else f"repro-worker-{pid}"
        meta.append({"name": "process_name", "ph": "M", "pid": pid,
                     "tid": 0, "args": {"name": label}})
    doc = {
        "traceEvents": meta + out,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": _TRACE_ID, "generator": "repro.obs"},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return path


def stage_summary(events: Optional[Iterable[Dict[str, Any]]] = None,
                  ) -> List[Tuple[str, int, float]]:
    """Aggregate buffered spans into ``(name, count, total_seconds)``
    rows, slowest stage first."""
    table: Dict[str, List[float]] = {}
    for event in (_EVENTS if events is None else events):
        if event.get("ph") != "X":
            continue
        row = table.setdefault(event["name"], [0, 0.0])
        row[0] += 1
        row[1] += event["dur"] / 1e6
    rows = [(name, int(n), total) for name, (n, total) in table.items()]
    rows.sort(key=lambda r: -r[2])
    return rows


def format_stage_table(events: Optional[Iterable[Dict[str, Any]]] = None,
                       ) -> str:
    """A per-stage wall-time table for ``write_*_artifacts`` reports."""
    rows = stage_summary(events)
    if not rows:
        return "stage wall time: no spans recorded (tracing disabled?)\n"
    width = max(len(name) for name, _, _ in rows)
    lines = [f"{'stage'.ljust(width)}  {'count':>6}  {'total_s':>9}"]
    for name, count, total in rows:
        lines.append(f"{name.ljust(width)}  {count:>6}  {total:>9.3f}")
    return "\n".join(lines) + "\n"
