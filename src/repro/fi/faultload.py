"""Faultload generation: seeded sampling over the injectable space.

A faultload is a reproducible list of :class:`~repro.fi.faults.Fault`
records.  Everything is derived from ``(target space, master seed)``:
the generator walks the enumerated spaces of :mod:`repro.fi.targets`
and draws faults with an explicitly seeded PRNG, so re-running a
campaign with the same seed replays the exact same faults in the same
order -- DAVOS-style SBFI faultload discipline.

Workloads come from :mod:`repro.verify.stimulus`: the same seeded
stimulus classes that drive the differential-verification harness
drive the fault campaign, so a fault's outcome is judged against the
schedule-matched golden model of the very workload it ran.

``exhaustive`` mode enumerates the full cross product for small cones
(every net x stuck-at polarity, every flop x injection cycle bucket,
...) instead of sampling -- useful for sign-off on small designs.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..rtl.ir import RtlModule
from ..synth.netlist import Netlist
from .faults import FAULT_MODELS, Fault, FaultError
from .targets import (flop_targets, fsm_register_targets, injectable_nets,
                      memory_targets, register_targets)

#: default pulse window length in clock cycles
PULSE_CYCLES = 2


def _gate_fault(model: str, index: int, rng: random.Random,
                nets, flops, mems, max_cycle: int) -> Optional[Fault]:
    """Draw one gate-level fault of *model*; None if no target exists."""
    if model in ("stuck0", "stuck1"):
        if not nets:
            return None
        net = rng.choice(nets)
        return Fault(index, model, "gate", "net", net.name, uid=net.uid,
                     value=1 if model == "stuck1" else 0)
    if model == "pulse":
        if not nets:
            return None
        net = rng.choice(nets)
        duration = min(PULSE_CYCLES, max_cycle)
        start = rng.randrange(max(1, max_cycle - duration))
        return Fault(index, model, "gate", "net", net.name, uid=net.uid,
                     value=rng.randrange(2), cycle=start,
                     duration=duration)
    if model == "seu":
        # split the SEU space between flop state and memory cells,
        # weighted by state-bit population
        mem_bits = sum(m.depth * m.width for m in mems)
        total = len(flops) + mem_bits
        if not total:
            return None
        if rng.randrange(total) < len(flops):
            flop = rng.choice(flops)
            return Fault(index, model, "gate", "flop", flop.name,
                         uid=flop.uid, cycle=rng.randrange(max_cycle))
        macro = rng.choices(mems,
                            weights=[m.depth * m.width for m in mems])[0]
        return Fault(index, model, "gate", "mem", macro.name,
                     address=rng.randrange(macro.depth),
                     bit=rng.randrange(macro.width),
                     cycle=rng.randrange(max_cycle))
    raise FaultError(f"unknown fault model {model!r} "
                     f"(known: {', '.join(FAULT_MODELS)})")


def generate_gate_faultload(netlist: Netlist, n_faults: int, seed: int,
                            max_cycle: int,
                            models: Sequence[str] = FAULT_MODELS,
                            exhaustive: bool = False) -> List[Fault]:
    """Sample *n_faults* gate-level faults from *netlist*'s spaces.

    Transient injection cycles are drawn from ``[0, max_cycle)`` -- the
    campaign passes its workload's cycle count.  With ``exhaustive``
    the stuck-at space is enumerated completely first (both polarities
    over every net), then transients are sampled for the remainder.
    """
    for model in models:
        if model not in FAULT_MODELS:
            raise FaultError(f"unknown fault model {model!r} "
                             f"(known: {', '.join(FAULT_MODELS)})")
    if max_cycle < 1:
        raise FaultError(f"max_cycle must be >= 1, got {max_cycle}")
    rng = random.Random(seed)
    nets = injectable_nets(netlist) if ("stuck0" in models
                                       or "stuck1" in models
                                       or "pulse" in models) else []
    flops = flop_targets(netlist) if "seu" in models else []
    mems = memory_targets(netlist) if "seu" in models else []
    faults: List[Fault] = []
    if exhaustive:
        for net in nets:
            for model in ("stuck0", "stuck1"):
                if model in models and len(faults) < n_faults:
                    faults.append(Fault(
                        len(faults), model, "gate", "net", net.name,
                        uid=net.uid, value=1 if model == "stuck1" else 0))
        if "seu" in models:
            for flop in flops:
                if len(faults) >= n_faults:
                    break
                faults.append(Fault(
                    len(faults), "seu", "gate", "flop", flop.name,
                    uid=flop.uid, cycle=rng.randrange(max_cycle)))
    while len(faults) < n_faults:
        fault = _gate_fault(models[len(faults) % len(models)],
                            len(faults), rng, nets, flops, mems,
                            max_cycle)
        if fault is None:
            # this model has no targets; try the others round-robin
            alternatives = [m for m in models
                            if _gate_fault(m, len(faults), random.Random(0),
                                           nets, flops, mems, max_cycle)]
            if not alternatives:
                raise FaultError(
                    f"netlist {netlist.name!r} has no injectable targets "
                    f"for models {list(models)}"
                )
            fault = _gate_fault(alternatives[0], len(faults), rng,
                                nets, flops, mems, max_cycle)
        faults.append(fault)
    return faults


def generate_rtl_faultload(module: RtlModule, n_faults: int, seed: int,
                           max_cycle: int,
                           exhaustive: bool = False) -> List[Fault]:
    """Sample register-bit SEUs from *module*'s state space.

    The RTL fault model is the register SEU (the paper's flow has no
    RTL netlist to stick at); with ``exhaustive`` every register bit is
    hit once (cycle still sampled) before sampling repeats.
    """
    if max_cycle < 1:
        raise FaultError(f"max_cycle must be >= 1, got {max_cycle}")
    regs = register_targets(module)
    if not regs:
        raise FaultError(f"module {module.name!r} has no registers")
    rng = random.Random(seed)
    faults: List[Fault] = []
    if exhaustive:
        for reg in regs:
            for bit in range(reg.width):
                if len(faults) >= n_faults:
                    break
                faults.append(Fault(
                    len(faults), "seu", "rtl", "reg", reg.name, bit=bit,
                    cycle=rng.randrange(max_cycle)))
    weights = [reg.width for reg in regs]
    while len(faults) < n_faults:
        reg = rng.choices(regs, weights=weights)[0]
        faults.append(Fault(
            len(faults), "seu", "rtl", "reg", reg.name,
            bit=rng.randrange(reg.width), cycle=rng.randrange(max_cycle)))
    return faults


def generate_beh_faultload(fsm, n_faults: int, seed: int, max_cycle: int,
                           exhaustive: bool = False) -> List[Fault]:
    """Sample variable-bit SEUs from a scheduled FSM's state space.

    The behavioural fault model mirrors the RTL one: a single bit-flip
    in one program variable at one workload cycle, weighted by variable
    width.  With ``exhaustive`` every variable bit is hit once (cycle
    still sampled) before sampling repeats.
    """
    if max_cycle < 1:
        raise FaultError(f"max_cycle must be >= 1, got {max_cycle}")
    regs = fsm_register_targets(fsm)
    if not regs:
        raise FaultError(f"FSM {fsm.name!r} has no variables")
    rng = random.Random(seed)
    faults: List[Fault] = []
    if exhaustive:
        for reg in regs:
            for bit in range(reg.width):
                if len(faults) >= n_faults:
                    break
                faults.append(Fault(
                    len(faults), "seu", "beh", "reg", reg.name, bit=bit,
                    cycle=rng.randrange(max_cycle)))
    weights = [reg.width for reg in regs]
    while len(faults) < n_faults:
        reg = rng.choices(regs, weights=weights)[0]
        faults.append(Fault(
            len(faults), "seu", "beh", "reg", reg.name,
            bit=rng.randrange(reg.width), cycle=rng.randrange(max_cycle)))
    return faults
