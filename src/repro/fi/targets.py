"""Enumeration of the injectable-target space.

Single source of truth for "what can a fault land on", shared by the
fault-injection faultload generator (:mod:`repro.fi.faultload`) and the
verification harness's mutation self-check
(:mod:`repro.verify.mutate`).  Everything here is a pure query over an
already-built :class:`~repro.synth.netlist.Netlist` or
:class:`~repro.rtl.ir.RtlModule`; nothing is mutated.

Gate-level spaces:

* **nets** -- every functional net (stuck-at / transient-pulse sites);
* **flop state bits** -- every sequential cell's Q (register SEU sites);
  scan insertion guarantees this enumeration covers the full state;
* **memory bits** -- ``depth x width`` per macro (memory-cell SEUs);
* **cell swaps** -- pin-compatible library-cell substitutions, derived
  from the cell definitions rather than a hard-coded table.

RTL-level space:

* **register bits** -- every declared register times its width.

Behavioural-level space:

* **FSM variable bits** -- every scheduled-program variable times its
  width (the state the behavioural simulation actually holds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..rtl.ir import RtlModule
from ..synth.library import Library
from ..synth.netlist import CellInstance, Net, Netlist


@dataclass(frozen=True)
class NetTarget:
    """One injectable gate-level net."""

    uid: int
    name: str
    is_flop_state: bool = False


@dataclass(frozen=True)
class MemoryTarget:
    """One injectable memory macro (the bit space is depth x width)."""

    name: str
    depth: int
    width: int
    writable: bool


@dataclass(frozen=True)
class RegisterTarget:
    """One injectable RTL register (the bit space is its width)."""

    name: str
    width: int


def injectable_nets(netlist: Netlist) -> List[NetTarget]:
    """Nets eligible for stuck-at / pulse saboteurs.

    A net qualifies when forcing it is observable in principle: it
    feeds at least one cell pin, memory-port pin or output port.
    Constant nets are excluded (forcing a constant models a library
    bug, not a wiring fault), as are dangling nets.
    """
    loaded = set()
    for cell in netlist.cells:
        for net in cell.pins.values():
            loaded.add(net.uid)
    for macro in netlist.memories:
        for rp in macro.read_ports:
            for net in rp.addr:
                loaded.add(net.uid)
            if rp.enable is not None:
                loaded.add(rp.enable.uid)
        for wp in macro.write_ports:
            loaded.add(wp.enable.uid)
            for net in wp.addr + wp.data:
                loaded.add(net.uid)
    for nets in netlist.outputs.values():
        for net in nets:
            loaded.add(net.uid)
    flop_uids = {c.outputs["Q"].uid for c in netlist.flops()}
    out: List[NetTarget] = []
    for net in netlist.nets:
        if net.kind in ("const0", "const1"):
            continue
        if net.uid not in loaded:
            continue
        out.append(NetTarget(net.uid, net.name,
                             is_flop_state=net.uid in flop_uids))
    return out


def flop_targets(netlist: Netlist) -> List[NetTarget]:
    """State bits for register SEUs: every flop's Q net.

    When a scan chain is present the enumeration follows chain order --
    scan insertion is what guarantees every flop is exposed (and the
    scan tests pin that the chain covers ``netlist.flops()`` exactly).
    """
    flops = netlist.scan_chain or netlist.flops()
    return [NetTarget(c.outputs["Q"].uid, c.name, is_flop_state=True)
            for c in flops]


def memory_targets(netlist: Netlist) -> List[MemoryTarget]:
    """Memory macros whose cells can take an SEU."""
    return [MemoryTarget(m.name, m.depth, m.width, m.writable)
            for m in netlist.memories]


def register_targets(module: RtlModule) -> List[RegisterTarget]:
    """RTL registers whose bits can take an SEU."""
    return [RegisterTarget(reg.name, reg.width)
            for reg in module.registers]


def fsm_register_targets(fsm) -> List[RegisterTarget]:
    """Behavioural-level SEU sites: the scheduled FSM's variables.

    *fsm* is a :class:`~repro.hls.schedule.Fsm`; its program variables
    are exactly the state the behavioural simulation holds between
    cycles, so they are the behavioural counterpart of the RTL register
    space.
    """
    return [RegisterTarget(name, width)
            for name, width in fsm.program.variables.items()]


# ----------------------------------------------------------------------
# pin-compatible cell substitutions (the mutation space)
# ----------------------------------------------------------------------

def derive_gate_swaps(library: Library) -> Dict[str, Tuple[str, ...]]:
    """Pin-compatible substitutions per cell type, from the library.

    Two combinational cells are swappable when they expose identical
    input and output pin tuples -- the substituted instance then still
    validates, simulates on both backends and hashes differently in the
    compile cache.  Derived from the cell definitions so multi-input
    and multi-output cells join the space automatically as the library
    grows (the historic hand-written table only knew 2-input gates and
    INV/BUF).
    """
    groups: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], List[str]] = {}
    for cell in library.cells.values():
        if cell.sequential:
            continue
        groups.setdefault((cell.inputs, cell.outputs), []).append(cell.name)
    swaps: Dict[str, Tuple[str, ...]] = {}
    for names in groups.values():
        if len(names) < 2:
            continue
        for name in names:
            swaps[name] = tuple(n for n in names if n != name)
    return swaps


def swap_targets(netlist: Netlist
                 ) -> List[Tuple[CellInstance, Tuple[str, ...]]]:
    """Cells with at least one pin-compatible substitution."""
    swaps = derive_gate_swaps(netlist.library)
    return [(cell, swaps[cell.cell_type]) for cell in netlist.cells
            if cell.cell_type in swaps]
