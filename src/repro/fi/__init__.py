"""Fault-injection campaign subsystem (dependability assessment).

Simulation-based fault injection over the refined SRC: seeded
faultloads across stuck-at, transient-pulse and SEU models, lockstep
classification against the schedule-matched golden model, and
parallel-fault execution on the compiled gate-level backend.  See
:mod:`repro.fi.campaign` for the entry points.
"""

from . import targets  # noqa: F401  (leaf module; import first)
from .campaign import (BUDGET_FRAMES, CampaignConfig, CampaignError,
                       LEVELS, Workload, build_campaign_netlist,
                       make_workload, parallel_map, run_campaign,
                       run_fi_self_check, run_gate_batch,
                       run_gate_fault_scalar, run_rtl_fault)
from .faultload import (PULSE_CYCLES, generate_gate_faultload,
                        generate_rtl_faultload)
from .faults import (FAULT_MODELS, Fault, FaultError, Overlay,
                     build_overlay, control_name, insert_saboteur)
from .report import (OUTCOMES, CampaignReport, FaultRecord,
                     SelfCheckResult, Throughput)
from .targets import (MemoryTarget, NetTarget, RegisterTarget,
                      derive_gate_swaps, flop_targets, injectable_nets,
                      memory_targets, register_targets, swap_targets)

__all__ = [
    "BUDGET_FRAMES", "CampaignConfig", "CampaignError", "CampaignReport",
    "FAULT_MODELS", "Fault", "FaultError", "FaultRecord", "LEVELS",
    "MemoryTarget", "NetTarget", "OUTCOMES", "Overlay", "PULSE_CYCLES",
    "RegisterTarget", "SelfCheckResult", "Throughput", "Workload",
    "build_campaign_netlist", "build_overlay", "control_name",
    "derive_gate_swaps", "flop_targets", "generate_gate_faultload",
    "generate_rtl_faultload", "injectable_nets", "insert_saboteur",
    "make_workload", "memory_targets", "parallel_map", "register_targets",
    "run_campaign", "run_fi_self_check", "run_gate_batch",
    "run_gate_fault_scalar", "run_rtl_fault", "swap_targets",
]
