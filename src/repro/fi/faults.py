"""Fault models and non-destructive netlist overlays.

Four fault models, the SBFI classics:

* ``stuck0`` / ``stuck1`` -- a permanent stuck-at on a net;
* ``pulse``  -- a timed transient forcing a value on a net for a
  bounded window of clock cycles;
* ``seu``    -- a single-event upset: one bit-flip, either in a flop
  (gate level), an RTL register bit, or a memory cell.

Gate-level net and flop faults are applied **structurally**, by cloning
the baseline netlist and inserting a *saboteur* cell in front of every
load of the target net:

* forcing faults get ``MUX2(S=fi<k>, A=<net>, B=const)`` -- transparent
  while the per-fault control input ``fi<k>`` is 0, forcing while 1;
* flip faults (flop SEU) get ``XOR2(A=<net>, B=fi<k>)`` -- a one-cycle
  pulse on the control flips the sampled state, which then persists
  through the hold path exactly like a real upset.

The baseline netlist is never touched, and every overlay carries a
name derived from its fault set, so compiled-backend artifacts key
distinctly in the :class:`~repro.compile_cache.CompileCache` while
timed variants of the *same* structure still share one compilation.
Because each saboteur is gated by its own control input, many faults
can ride in one overlay and be activated per-pattern by the compiled
parallel-pattern backend -- classic parallel-fault simulation.

Memory-cell SEUs need no structure: they poke the (pattern-private)
behavioural memory model at the injection cycle.  RTL register SEUs
poke the simulator's environment and re-settle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..synth.netlist import Net, Netlist

#: fault-model names accepted by the faultload generator and the CLI
FAULT_MODELS = ("stuck0", "stuck1", "pulse", "seu")

#: models applied by inserting a saboteur cell (vs. state pokes)
STRUCTURAL_MODELS = ("stuck0", "stuck1", "pulse", "seu")


class FaultError(ValueError):
    """Raised for malformed faults or inapplicable targets."""


@dataclass(frozen=True)
class Fault:
    """One concrete fault, fully replayable from its fields.

    ``index`` is the fault's position in the campaign faultload -- with
    the campaign seed it is the complete replay record.
    """

    index: int
    model: str           # one of FAULT_MODELS
    level: str           # 'gate' | 'rtl' | 'beh'
    target_kind: str     # 'net' | 'flop' | 'reg' | 'mem'
    target: str          # net name / flop cell name / register / macro
    uid: int = -1        # gate net uid ('net' and 'flop' targets)
    bit: int = 0         # register / memory data bit
    address: int = 0     # memory word address
    value: int = 0       # forced value (stuck/pulse)
    cycle: int = -1      # first injection cycle (-1: permanent)
    duration: int = 1    # pulse window length in cycles

    @property
    def permanent(self) -> bool:
        return self.cycle < 0

    @property
    def structural(self) -> bool:
        """True when applied via a saboteur in a netlist overlay."""
        return self.level == "gate" and self.target_kind in ("net", "flop")

    @property
    def flip(self) -> bool:
        """True for XOR (flip) saboteurs, False for MUX (force) ones."""
        return self.model == "seu"

    def active(self, cycle: int) -> bool:
        """Is the saboteur control asserted on *cycle*?"""
        if self.permanent:
            return True
        return self.cycle <= cycle < self.cycle + self.duration

    def structure_key(self) -> str:
        """Overlay-naming key: identical structure => identical key.

        Deliberately excludes timing (``cycle`` / ``duration``): two
        pulses on the same net differ only in control waveforms, so
        their overlays share one compiled artifact.
        """
        if self.flip:
            return f"xor:{self.uid}"
        return f"mux{self.value}:{self.uid}"

    def format(self) -> str:
        where = f"{self.target_kind} {self.target}"
        if self.target_kind == "mem":
            where += f"[{self.address}].{self.bit}"
        elif self.target_kind == "reg":
            where += f".{self.bit}"
        when = "permanent" if self.permanent else (
            f"cycle {self.cycle}" if self.duration == 1
            else f"cycles {self.cycle}..{self.cycle + self.duration - 1}")
        return f"#{self.index} {self.model} @ {where} ({when})"


@dataclass
class Overlay:
    """A saboteur-instrumented clone of the baseline netlist."""

    netlist: Netlist
    #: structural faults in insertion order; fault -> control input name
    controls: Dict[int, str] = field(default_factory=dict)
    faults: List[Fault] = field(default_factory=list)


def _net_by_uid(netlist: Netlist, uid: int) -> Net:
    for net in netlist.nets:
        if net.uid == uid:
            return net
    raise FaultError(f"no net with uid {uid} in {netlist.name!r}")


def _rewire_loads(netlist: Netlist, old: Net, new: Net,
                  skip_cell=None) -> None:
    """Point every load of *old* (cell pins, memory-port pins, output
    ports) at *new*; *skip_cell*'s own pins are left alone."""
    for cell in netlist.cells:
        if cell is skip_cell:
            continue
        for pin, net in cell.pins.items():
            if net is old:
                cell.pins[pin] = new
    for macro in netlist.memories:
        for rp in macro.read_ports:
            rp.addr = [new if n is old else n for n in rp.addr]
            if rp.enable is old:
                rp.enable = new
        for wp in macro.write_ports:
            if wp.enable is old:
                wp.enable = new
            wp.addr = [new if n is old else n for n in wp.addr]
            wp.data = [new if n is old else n for n in wp.data]
    for name, nets in netlist.outputs.items():
        netlist.outputs[name] = [new if n is old else n for n in nets]


def control_name(fault: Fault) -> str:
    """The overlay control-input name of a structural fault."""
    return f"fi{fault.index}"


def insert_saboteur(netlist: Netlist, fault: Fault) -> str:
    """Insert *fault*'s saboteur into *netlist* (in place).

    Adds a 1-bit control input named after the fault and rewires every
    load of the target net through the saboteur cell.  Returns the
    control input's name.  Multiple saboteurs compose, even on the same
    net: each inserts in front of the previous loads, and at most one
    control is asserted per simulated pattern.
    """
    if not fault.structural:
        raise FaultError(f"fault {fault.format()} is not structural")
    target = _net_by_uid(netlist, fault.uid)
    ctrl_name = control_name(fault)
    ctrl = netlist.add_input(ctrl_name, 1)[0]
    if fault.flip:
        cell = netlist.add_cell("XOR2", {"A": target, "B": ctrl})
    else:
        forced = netlist.const1 if fault.value else netlist.const0
        cell = netlist.add_cell(
            "MUX2", {"S": ctrl, "A": target, "B": forced})
    _rewire_loads(netlist, target, cell.outputs["Y"], skip_cell=cell)
    return ctrl_name


def build_overlay(baseline: Netlist, faults: Sequence[Fault]) -> Overlay:
    """Clone *baseline* and insert saboteurs for the structural faults.

    Non-structural faults (memory SEUs) ride along without saboteurs --
    they are applied as state pokes at run time.  The clone's name
    encodes the set of structure keys, so distinct fault sets key
    distinctly in the compile cache while retimed variants share.
    """
    structural = [f for f in faults if f.structural]
    suffix = "+".join(f.structure_key() for f in structural) or "baseline"
    overlay = Overlay(baseline.clone(f"{baseline.name}@{suffix}"))
    overlay.faults = list(faults)
    for fault in structural:
        overlay.controls[fault.index] = insert_saboteur(
            overlay.netlist, fault)
    overlay.netlist.validate()
    return overlay
