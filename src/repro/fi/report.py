"""Campaign outcome records and dependability metrics.

Every injected fault ends in exactly one class, the SBFI taxonomy
adapted to this flow's observation model:

* ``masked``   -- the output stream is bit-identical to the golden
  model's: the fault had no architectural effect on this workload;
* ``sdc``      -- silent data corruption: the run completed and
  produced the full stream, but at least one frame differs;
* ``detected`` -- the fault made itself visible to the checking
  machinery before corrupting data silently: an X reached an observed
  port or a simulator/model check fired (the gate-level analogue of
  the flow's bit-accuracy re-validation catching a refinement bug);
* ``hang``     -- the design failed to deliver the expected output
  stream within the cycle budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..compile_cache import CacheStats
from .faults import Fault

#: the four outcome classes, in report order
OUTCOMES = ("masked", "sdc", "detected", "hang")


@dataclass
class FaultRecord:
    """Outcome of one injected fault."""

    fault: Fault
    outcome: str
    #: first diverging output frame (sdc) or -1
    first_frame: int = -1
    #: cycle the fault became visible (detected) or -1
    detected_cycle: int = -1
    #: what the detection was (X on a port, model check, crash)
    detail: str = ""
    #: outputs delivered before the budget ran out
    n_outputs: int = 0

    def as_dict(self) -> Dict[str, object]:
        f = self.fault
        return {
            "index": f.index,
            "model": f.model,
            "level": f.level,
            "target_kind": f.target_kind,
            "target": f.target,
            "bit": f.bit,
            "address": f.address,
            "cycle": f.cycle,
            "duration": f.duration,
            "outcome": self.outcome,
            "first_frame": self.first_frame,
            "detected_cycle": self.detected_cycle,
            "detail": self.detail,
            "n_outputs": self.n_outputs,
        }

    def format(self) -> str:
        extra = ""
        if self.outcome == "sdc":
            extra = f" first frame {self.first_frame}"
        elif self.outcome == "detected":
            extra = f" at cycle {self.detected_cycle}: {self.detail}"
        elif self.outcome == "hang":
            extra = f" ({self.n_outputs} outputs delivered)"
        return f"[{self.outcome.upper():8s}] {self.fault.format()}{extra}"


@dataclass
class Throughput:
    """Injection throughput of one backend."""

    backend: str
    faults: int
    wall_seconds: float

    @property
    def faults_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.faults / self.wall_seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "faults": self.faults,
            "wall_seconds": self.wall_seconds,
            "faults_per_second": self.faults_per_second,
        }

    def format(self) -> str:
        return (f"{self.backend:12s} {self.faults:5d} faults in "
                f"{self.wall_seconds:7.2f} s = "
                f"{self.faults_per_second:8.1f} faults/s")


def tally(records: Sequence[FaultRecord]) -> Dict[str, int]:
    counts = {name: 0 for name in OUTCOMES}
    for record in records:
        counts[record.outcome] += 1
    return counts


def tally_by(records: Sequence[FaultRecord],
             key) -> Dict[str, Dict[str, int]]:
    out: Dict[str, Dict[str, int]] = {}
    for record in records:
        out.setdefault(key(record), {n: 0 for n in OUTCOMES})[
            record.outcome] += 1
    return out


@dataclass
class CampaignReport:
    """Everything one campaign produced."""

    level: str
    design: str
    seed: int
    budget: str
    jobs: int
    n_workload_frames: int
    cycle_budget: int
    #: the classification engine the campaign ran on
    backend: str = "compiled"
    records: List[FaultRecord] = field(default_factory=list)
    throughput: List[Throughput] = field(default_factory=list)
    #: aggregated across parent + worker processes
    cache_stats: Dict[str, CacheStats] = field(default_factory=dict)
    self_check: Optional["SelfCheckResult"] = None
    #: the run was interrupted; ``records`` holds the partial prefix
    interrupted: bool = False

    @property
    def classification(self) -> Dict[str, int]:
        return tally(self.records)

    @property
    def by_model(self) -> Dict[str, Dict[str, int]]:
        return tally_by(self.records, lambda r: r.fault.model)

    @property
    def by_target_kind(self) -> Dict[str, Dict[str, int]]:
        return tally_by(self.records, lambda r: r.fault.target_kind)

    def throughput_of(self, backend: str) -> Optional[Throughput]:
        for t in self.throughput:
            if t.backend == backend:
                return t
        return None

    def as_dict(self) -> Dict[str, object]:
        return {
            "campaign": {
                "level": self.level,
                "design": self.design,
                "backend": self.backend,
                "seed": self.seed,
                "budget": self.budget,
                "jobs": self.jobs,
                "n_faults": len(self.records),
                "workload_frames": self.n_workload_frames,
                "cycle_budget": self.cycle_budget,
            },
            "classification": self.classification,
            "by_model": self.by_model,
            "by_target_kind": self.by_target_kind,
            "throughput": {t.backend: t.as_dict()
                           for t in self.throughput},
            "cache": {name: {"hits": s.hits, "misses": s.misses,
                             "entries": s.entries,
                             "evictions": s.evictions,
                             "source_bytes": s.source_bytes}
                      for name, s in self.cache_stats.items()},
            "results": [r.as_dict() for r in self.records],
        }

    def format(self, verbose: bool = False) -> str:
        n = len(self.records)
        counts = self.classification
        lines = [
            f"Fault-injection campaign: {n} faults, level={self.level}, "
            f"design={self.design}, backend={self.backend}, "
            f"seed={self.seed}, budget={self.budget}, jobs={self.jobs}",
            f"workload: {self.n_workload_frames} frames, "
            f"cycle budget {self.cycle_budget}",
        ]
        if self.interrupted:
            lines.append(
                f"INTERRUPTED: partial results -- {n} fault(s) were "
                "classified before the stop (pool torn down cleanly)")
        for name in OUTCOMES:
            share = counts[name] / n * 100 if n else 0.0
            lines.append(f"  {name:9s} {counts[name]:5d}  ({share:5.1f}%)")
        if self.by_model:
            lines.append("per fault model:")
            for model in sorted(self.by_model):
                row = self.by_model[model]
                total = sum(row.values())
                cells = " ".join(f"{name}={row[name]}"
                                 for name in OUTCOMES)
                lines.append(f"  {model:8s} {total:5d}  {cells}")
        if self.throughput:
            lines.append("injection throughput:")
            for t in self.throughput:
                lines.append("  " + t.format())
        for name, stats in sorted(self.cache_stats.items()):
            lines.append(f"{name} {stats.format()} (aggregated over "
                         f"{self.jobs} job(s))")
        if verbose:
            lines += ["  " + r.format() for r in self.records]
        if self.self_check is not None:
            lines.append(self.self_check.format())
        return "\n".join(lines)


@dataclass
class SelfCheckResult:
    """Outcome of the known-fault classification self-check."""

    sdc_record: FaultRecord
    masked_record: FaultRecord

    @property
    def passed(self) -> bool:
        return (self.sdc_record.outcome == "sdc"
                and self.masked_record.outcome == "masked")

    def format(self) -> str:
        lines = ["self-check (known-SDC and known-masked faults):"]
        lines.append("  " + self.sdc_record.format())
        lines.append("  " + self.masked_record.format())
        lines.append("  PASS: both known faults classified correctly"
                     if self.passed else
                     "  FAIL: known-fault classification is wrong")
        return "\n".join(lines)
