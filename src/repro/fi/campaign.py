"""Fault-injection campaign runner.

Ties the subsystem together: a seeded workload from the verification
harness's stimulus generator, a seeded faultload over the injectable
spaces, and lockstep execution of every fault against the
schedule-matched golden model -- the dependability-assessment
counterpart of the flow's bit-accuracy refinement checks.

Execution strategies:

* **gate level, compiled** -- parallel-fault simulation: faults are
  batched into one saboteur overlay and run through the compiled
  backend's pattern planes, pattern 0 carrying the fault-free run as an
  in-flight golden cross-check.  One codegen pass and one simulation
  sweep classify a whole batch (up to the 64-pattern machine-word cap).
* **gate level, vectorized** -- the same parallel-fault scheme on the
  numpy bitplane backend, whose pattern width is unbounded: the whole
  seeded faultload becomes a single sweep instead of a queue of
  word-sized batches, keeping the pattern-0 golden cross-check.
* **gate level, interpreted** -- one saboteur overlay and one
  selective-trace simulation per fault (the throughput baseline).
* **rtl** -- register-bit flips poked straight into the simulator
  environment.  The interpreted and compiled engines run one fault per
  simulation; the vectorized engine sweeps the whole faultload at once,
  one lane per fault plus the fault-free lane 0.
* **beh** -- FSM variable-bit flips.  On the compiled behavioural
  backend faults are batched into the pattern planes of one
  :class:`~repro.hls.compiled.CompiledFsmBatch` (pattern 0 fault-free
  as the in-flight golden cross-check, exactly like the gate batches);
  the vectorized backend runs the same scheme whole-faultload-wide on
  uint64 lane arrays; the interpreted engine runs one fault per
  simulation.

Campaigns scale across a ``multiprocessing`` worker pool
(:func:`parallel_map`); classification is a pure function of
``(fault, workload)``, so any job count produces identical records,
and per-task compile-cache deltas are shipped back to the parent so
cache statistics stay correct under ``--jobs``.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..compile_cache import (absorb_deltas, aggregate_stats,
                             counters_delta, counters_snapshot)
from ..datatypes import logic as L
from ..datatypes.integers import wrap_signed
from ..flow.refinement import Level, build_module
from ..gatesim import GateSimulator
from ..obs.metrics import REGISTRY
from ..obs.trace import (TracedTask, absorb_events, current_context,
                         record_span, span)
from ..rtl import RtlSimulator
from ..src_design.behavioral import (BehavioralBatchSimulation,
                                     BehavioralSimulation, build_main_fsm)
from ..src_design.params import SrcParams
from ..src_design.schedule import KIND_IN, KIND_MODE, KIND_OUT, make_schedule
from ..src_design.testbench import BehavioralDutDriver, RtlDutDriver
from ..synth import synthesize
from ..verify.runner import golden_outputs
from ..verify.stimulus import StimulusCase, generate_cases
from .faultload import (generate_beh_faultload, generate_gate_faultload,
                        generate_rtl_faultload)
from .faults import FAULT_MODELS, Fault, build_overlay, control_name
from .report import (CampaignReport, FaultRecord, SelfCheckResult,
                     Throughput, tally)

#: campaign levels (the clocked implementation levels of the flow)
LEVELS = ("rtl", "beh", "gate")


class CampaignError(RuntimeError):
    """Raised for campaign-harness failures (never for fault effects)."""


#: workload sizes per budget name: input samples driven through the SRC
BUDGET_FRAMES = {"smoke": 8, "small": 12, "medium": 24, "large": 64}


@dataclass(frozen=True)
class CampaignConfig:
    """Everything a campaign needs; fully determines its outcome."""

    params: SrcParams
    level: str = "gate"              # 'gate' | 'rtl' | 'beh'
    n_faults: int = 100
    jobs: int = 1
    seed: int = 0
    budget: str = "small"            # workload size, see BUDGET_FRAMES
    models: Tuple[str, ...] = FAULT_MODELS
    exhaustive: bool = False
    #: classification engine: 'compiled' (word-width pattern batches),
    #: 'vectorized' (whole-faultload numpy sweeps) or 'native'
    #: (word-width C batches; degrades to 'compiled' sans toolchain)
    backend: str = "compiled"
    #: faults per compiled-overlay batch (plus pattern 0 = fault-free);
    #: the vectorized engine ignores this -- its batch is the faultload
    batch_size: int = 31
    #: faults re-run on the interpreted engine for the throughput probe
    probe_faults: int = 16

    def validated(self) -> "CampaignConfig":
        if self.level not in LEVELS:
            raise CampaignError(
                f"unknown level {self.level!r} (expected one of {LEVELS})")
        if self.backend not in ("compiled", "vectorized", "native"):
            raise CampaignError(
                f"unknown campaign backend {self.backend!r} "
                "(expected 'compiled', 'vectorized' or 'native')")
        if self.budget not in BUDGET_FRAMES:
            raise CampaignError(
                f"unknown budget {self.budget!r} "
                f"(known: {', '.join(BUDGET_FRAMES)})")
        if self.n_faults < 1:
            raise CampaignError("n_faults must be >= 1")
        if self.batch_size < 1:
            raise CampaignError("batch_size must be >= 1")
        return self


@dataclass
class Workload:
    """One stimulus case prepared for cycle-accurate lockstep."""

    case: StimulusCase
    golden: List[Tuple[int, ...]]
    by_tick: Dict[int, List[object]]
    last_tick: int
    cycle_budget: int

    @property
    def expected(self) -> int:
        return len(self.golden)


def make_workload(params: SrcParams, seed: int, budget: str) -> Workload:
    """Build the campaign workload: stimulus, schedule, golden outputs.

    The workload is the first case the verification harness would fuzz
    with the same seed (kind ``random``), run over the clock-quantised
    schedule -- so fault outcomes are judged against exactly the golden
    stream the differential harness uses.
    """
    n_inputs = BUDGET_FRAMES[budget]
    case = generate_cases(params, seed, 1, n_inputs)[0]
    golden = [tuple(f) for f in golden_outputs(params, case,
                                               quantized=True)]
    schedule = make_schedule(params, case.mode, case.n_inputs,
                             quantized=True,
                             mode_changes=case.mode_changes)
    clk = params.clock_period_ps
    by_tick: Dict[int, List[object]] = {}
    last_tick = 0
    for ev in schedule:
        tick = int(ev.time_ps // clk)
        by_tick.setdefault(tick, []).append(ev)
        last_tick = max(last_tick, tick)
    cycle_budget = last_tick + params.max_latency_cycles + 8
    return Workload(case, golden, by_tick, last_tick, cycle_budget)


def build_campaign_netlist(params: SrcParams) -> "object":
    """The gate-level DUT of the campaign: the synthesised RTL netlist.

    Synthesis inserts the scan chain (the paper's area numbers include
    one in every design), which guarantees
    :func:`repro.fi.targets.flop_targets` enumerates the complete state
    space.  ``scan_en`` stays 0 throughout the workload, so the scan
    netlist is workload-equivalent to the plain one.
    """
    return synthesize(build_module(params, Level.GATE_RTL))


def _drive_workload_inputs(sim, events) -> None:
    """Drive one tick's schedule events on the DUT inputs (broadcast)."""
    frame = None
    cfg = None
    req = False
    for ev in events:
        if ev.kind == KIND_IN:
            frame = ev.value
        elif ev.kind == KIND_OUT:
            req = True
        elif ev.kind == KIND_MODE:
            cfg = ev.value
    sim.set_input("in_valid", 1 if frame is not None else 0)
    if frame is not None:
        sim.set_input("in_l", frame[0])
        sim.set_input("in_r", frame[1])
    sim.set_input("cfg_valid", 1 if cfg is not None else 0)
    if cfg is not None:
        sim.set_input("cfg_mode", cfg)
    sim.set_input("out_req", 1 if req else 0)


def _resolve_frames(workload: Workload):
    """Replace KIND_IN event values (input indices) with sample frames."""
    by_tick: Dict[int, List[object]] = {}
    inputs = workload.case.inputs
    for tick, events in workload.by_tick.items():
        out = []
        for ev in events:
            if ev.kind == KIND_IN:
                ev = replace(ev, value=inputs[ev.value])
            out.append(ev)
        by_tick[tick] = out
    return by_tick


def _classify(fault: Fault, outputs, detected, golden) -> FaultRecord:
    """Map one fault's observed behaviour onto the outcome taxonomy."""
    if detected is not None:
        cycle, detail = detected
        return FaultRecord(fault, "detected", detected_cycle=cycle,
                           detail=detail, n_outputs=len(outputs))
    if len(outputs) < len(golden):
        return FaultRecord(fault, "hang", n_outputs=len(outputs))
    for i, (got, want) in enumerate(zip(outputs, golden)):
        if got != want:
            return FaultRecord(fault, "sdc", first_frame=i,
                               n_outputs=len(outputs))
    return FaultRecord(fault, "masked", n_outputs=len(outputs))


# ----------------------------------------------------------------------
# gate level: parallel-fault batches on the compiled backend
# ----------------------------------------------------------------------

def run_gate_batch(netlist, workload: Workload, faults: Sequence[Fault],
                   params: SrcParams,
                   backend: str = "compiled") -> List[FaultRecord]:
    """Classify a batch of gate-level faults in one batched sweep.

    Builds a single overlay carrying every structural fault, simulates
    ``len(faults) + 1`` patterns at once -- pattern 0 fault-free, pattern
    ``b + 1`` with fault ``b``'s control asserted per its schedule --
    and diffs each pattern's output stream against the golden model.
    The fault-free pattern doubles as an in-run sanity check: if it
    diverges from the golden model the harness itself is broken.

    *backend* selects the pattern engine: ``"compiled"`` and
    ``"native"`` cap batches at the 64-pattern machine word,
    ``"vectorized"`` takes a whole faultload in one numpy sweep.
    """
    overlay = build_overlay(netlist, faults)
    n = len(faults)
    sim = GateSimulator(overlay.netlist, backend=backend,
                        n_patterns=n + 1)
    pattern_of = {f.index: b + 1 for b, f in enumerate(faults)}

    toggles: Dict[int, List[Tuple[Fault, int]]] = {}
    mem_pokes: Dict[int, List[Fault]] = {}
    for fault in faults:
        if fault.target_kind == "mem":
            mem_pokes.setdefault(fault.cycle, []).append(fault)
        elif fault.permanent:
            values = [0] * (n + 1)
            values[pattern_of[fault.index]] = 1
            sim.set_input_patterns(control_name(fault), values)
        else:
            toggles.setdefault(fault.cycle, []).append((fault, 1))
            toggles.setdefault(fault.cycle + fault.duration,
                               []).append((fault, 0))

    by_tick = _resolve_frames(workload)
    golden = workload.golden
    expected = workload.expected
    dw = params.data_width
    outputs: List[List[Tuple[int, int]]] = [[] for _ in range(n + 1)]
    detected: List[Optional[Tuple[int, str]]] = [None] * (n + 1)
    live = list(range(n + 1))

    tick = 0
    while tick <= workload.cycle_budget and live:
        _drive_workload_inputs(sim, by_tick.get(tick, ()))
        for fault, value in toggles.get(tick, ()):
            values = [0] * (n + 1)
            values[pattern_of[fault.index]] = value
            sim.set_input_patterns(control_name(fault), values)
        for fault in mem_pokes.get(tick, ()):
            model = sim.privatize_memory(fault.target,
                                         pattern_of[fault.index])
            model.flip_bit(fault.address, fault.bit)
        sim.step()

        v_ones, v_unks = sim.get_port_planes("out_valid")
        valid_ones, valid_unk = v_ones[0], v_unks[0]
        l_planes = r_planes = None
        if valid_ones or valid_unk:
            l_planes = sim.get_port_planes("out_l")
            r_planes = sim.get_port_planes("out_r")
        still_live = []
        for p in live:
            bit = 1 << p
            if valid_unk & bit:
                detected[p] = (tick, "out_valid is X")
                continue
            if valid_ones & bit:
                frame = _decode_pattern(l_planes, r_planes, p, dw)
                if frame is None:
                    detected[p] = (tick, "output data is X")
                    continue
                outputs[p].append(frame)
                if len(outputs[p]) >= expected:
                    continue  # pattern finished its stream
            still_live.append(p)
        live = still_live
        tick += 1

    if detected[0] is not None or outputs[0] != golden:
        raise CampaignError(
            f"fault-free pattern diverged from the golden model on "
            f"overlay {overlay.netlist.name!r} -- campaign harness bug")
    return [_classify(fault, outputs[b + 1], detected[b + 1], golden)
            for b, fault in enumerate(faults)]


def _decode_pattern(l_planes, r_planes, p: int,
                    data_width: int) -> Optional[Tuple[int, int]]:
    """Extract pattern *p*'s (out_l, out_r) frame; None when any bit
    is X."""
    bit = 1 << p
    frame = []
    for ones, unks in (l_planes, r_planes):
        value = 0
        for i in range(len(ones)):
            if unks[i] & bit:
                return None
            if ones[i] & bit:
                value |= 1 << i
        frame.append(wrap_signed(value, data_width))
    return (frame[0], frame[1])


# ----------------------------------------------------------------------
# gate level: one fault per run (interpreted-engine baseline)
# ----------------------------------------------------------------------

def run_gate_fault_scalar(netlist, workload: Workload, fault: Fault,
                          params: SrcParams,
                          backend: str = "interpreted") -> FaultRecord:
    """Classify one gate-level fault with a single-pattern simulation."""
    overlay = build_overlay(netlist, [fault])
    by_tick = _resolve_frames(workload)
    golden = workload.golden
    expected = workload.expected
    dw = params.data_width
    outputs: List[Tuple[int, int]] = []
    detected: Optional[Tuple[int, str]] = None
    tick = 0
    try:
        sim = GateSimulator(overlay.netlist, backend=backend)
        ctrl = control_name(fault) if fault.structural else None
        ctrl_state = 0
        while tick <= workload.cycle_budget and len(outputs) < expected:
            _drive_workload_inputs(sim, by_tick.get(tick, ()))
            if ctrl is not None:
                want = 1 if fault.active(tick) else 0
                if want != ctrl_state:
                    sim.set_input(ctrl, want)
                    ctrl_state = want
            elif fault.target_kind == "mem" and tick == fault.cycle:
                sim.memory_model(fault.target).flip_bit(
                    fault.address, fault.bit)
            sim.step()
            valid = sim.get_logic("out_valid")[0]
            if valid not in (L.L0, L.L1):
                detected = (tick, "out_valid is X")
                break
            if valid == L.L1:
                frame = []
                for port in ("out_l", "out_r"):
                    bits = sim.get_logic(port)
                    if any(b not in (L.L0, L.L1) for b in bits):
                        detected = (tick, "output data is X")
                        break
                    frame.append(wrap_signed(
                        sum(1 << i for i, b in enumerate(bits)
                            if b == L.L1), dw))
                if detected is not None:
                    break
                outputs.append((frame[0], frame[1]))
            tick += 1
    except Exception as exc:  # simulator check fired: the fault was caught
        detected = (tick, f"{type(exc).__name__}: {exc}")
    return _classify(fault, outputs, detected, golden)


# ----------------------------------------------------------------------
# rtl level: register-bit flips poked into the simulator environment
# ----------------------------------------------------------------------

def run_rtl_fault(module, workload: Workload, fault: Fault,
                  params: SrcParams,
                  backend: str = "interpreted") -> FaultRecord:
    """Classify one RTL register SEU on either RTL engine.

    The flip is applied to the simulator environment at the start of
    the injection cycle, so all logic evaluated on that cycle -- and the
    next-state functions -- see the upset value, matching the gate-level
    XOR saboteur's observation window.
    """
    by_tick = _resolve_frames(workload)
    golden = workload.golden
    expected = workload.expected
    outputs: List[Tuple[int, int]] = []
    detected: Optional[Tuple[int, str]] = None
    tick = 0
    try:
        sim = RtlSimulator(module, backend=backend)
        driver = RtlDutDriver(sim, params)
        while tick <= workload.cycle_budget and len(outputs) < expected:
            if tick == fault.cycle:
                sim.env[fault.target] = (
                    sim.env[fault.target] ^ (1 << fault.bit))
                sim.settle()
            frame = None
            cfg = None
            req = False
            for ev in by_tick.get(tick, ()):
                if ev.kind == KIND_IN:
                    frame = ev.value
                elif ev.kind == KIND_OUT:
                    req = True
                elif ev.kind == KIND_MODE:
                    cfg = ev.value
            result = driver.cycle(frame=frame, cfg=cfg, req=req)
            if result is not None:
                outputs.append(tuple(result))
            tick += 1
    except Exception as exc:  # model check fired: the fault was caught
        detected = (tick, f"{type(exc).__name__}: {exc}")
    return _classify(fault, outputs, detected, golden)


def run_rtl_batch(module, workload: Workload, faults: Sequence[Fault],
                  params: SrcParams) -> List[FaultRecord]:
    """Classify a batch of RTL faults in one vectorized sweep.

    One :class:`~repro.rtl.vectorized.VectorizedRtlSimulator` carries
    ``len(faults) + 1`` lanes under the common workload: lane 0 runs
    fault-free as the in-flight golden cross-check, lane ``b + 1``
    takes fault ``b``'s register-bit flip at its injection cycle --
    the RTL mirror of the gate level's parallel-fault batches.
    Register state is held per lane, so a single settle/step pass per
    cycle classifies the whole faultload.
    """
    import numpy as np

    n = len(faults)
    sim = RtlSimulator(module, backend="vectorized", n_patterns=n + 1)
    pokes: Dict[int, List[Tuple[int, Fault]]] = {}
    for b, fault in enumerate(faults):
        pokes.setdefault(fault.cycle, []).append((b + 1, fault))

    by_tick = _resolve_frames(workload)
    golden = workload.golden
    expected = workload.expected
    dw = params.data_width
    outputs: List[List[Tuple[int, int]]] = [[] for _ in range(n + 1)]
    remaining = n + 1
    tick = 0
    while tick <= workload.cycle_budget and remaining:
        if tick in pokes:
            for p, fault in pokes[tick]:
                sim.env[fault.target][p] ^= np.uint64(1 << fault.bit)
            sim.settle()
        _drive_workload_inputs(sim, by_tick.get(tick, ()))
        sim.step()
        valid = sim.get_patterns("out_valid")
        if any(valid):
            out_l = sim.get_patterns("out_l")
            out_r = sim.get_patterns("out_r")
            for p in range(n + 1):
                if valid[p] and len(outputs[p]) < expected:
                    outputs[p].append((wrap_signed(out_l[p], dw),
                                       wrap_signed(out_r[p], dw)))
                    if len(outputs[p]) >= expected:
                        remaining -= 1
        tick += 1

    if outputs[0] != golden:
        raise CampaignError(
            f"fault-free pattern diverged from the golden model on "
            f"module {module.name!r} -- campaign harness bug")
    return [_classify(fault, outputs[b + 1], None, golden)
            for b, fault in enumerate(faults)]


# ----------------------------------------------------------------------
# behavioural level: FSM variable-bit flips
# ----------------------------------------------------------------------

def _workload_stimulus(events):
    """Split one tick's schedule events into (frame, cfg, req)."""
    frame = None
    cfg = None
    req = False
    for ev in events:
        if ev.kind == KIND_IN:
            frame = ev.value
        elif ev.kind == KIND_OUT:
            req = True
        elif ev.kind == KIND_MODE:
            cfg = ev.value
    return frame, cfg, req


def run_beh_batch(fsm, workload: Workload, faults: Sequence[Fault],
                  params: SrcParams,
                  backend: str = "compiled") -> List[FaultRecord]:
    """Classify a batch of behavioural faults in one batched sweep.

    One :class:`BehavioralBatchSimulation` carries ``len(faults) + 1``
    private FSM instances under the common workload: pattern 0 runs
    fault-free as the in-flight golden cross-check, pattern ``b + 1``
    takes fault ``b``'s variable-bit flip at its injection cycle --
    the behavioural mirror of the gate level's parallel-fault batches.
    *backend* picks the batch engine (``"compiled"`` per-pattern
    environments, ``"vectorized"`` uint64 lane arrays, ``"native"``
    pattern-major C buffers).
    """
    n = len(faults)
    sim = BehavioralBatchSimulation(params, n + 1, fsm=fsm,
                                    backend=backend)
    pokes: Dict[int, List[Tuple[int, Fault]]] = {}
    for b, fault in enumerate(faults):
        pokes.setdefault(fault.cycle, []).append((b + 1, fault))

    by_tick = _resolve_frames(workload)
    golden = workload.golden
    expected = workload.expected
    dw = params.data_width
    outputs: List[List[Tuple[int, int]]] = [[] for _ in range(n + 1)]
    remaining = n + 1
    tick = 0
    while tick <= workload.cycle_budget and remaining:
        for p, fault in pokes.get(tick, ()):
            if backend == "vectorized":
                sim.batch.flip_bit(p, fault.target, fault.bit)
            else:
                env = sim.batch.envs[p]
                env[fault.target] = env[fault.target] ^ (1 << fault.bit)
        frame, cfg, req = _workload_stimulus(by_tick.get(tick, ()))
        if frame is not None:
            sim.drive_input(frame[0], frame[1])
        if cfg is not None:
            sim.drive_cfg(cfg)
        if req:
            sim.drive_req()
        frames = sim.step()
        for p, result in enumerate(frames):
            if result is not None and len(outputs[p]) < expected:
                outputs[p].append((wrap_signed(result[0], dw),
                                   wrap_signed(result[1], dw)))
                if len(outputs[p]) >= expected:
                    remaining -= 1
        tick += 1

    if outputs[0] != golden:
        raise CampaignError(
            f"fault-free pattern diverged from the golden model on "
            f"FSM {fsm.name!r} -- campaign harness bug")
    return [_classify(fault, outputs[b + 1], None, golden)
            for b, fault in enumerate(faults)]


def run_beh_fault_scalar(fsm, workload: Workload, fault: Fault,
                         params: SrcParams,
                         backend: str = "interpreted") -> FaultRecord:
    """Classify one behavioural fault on either FSM engine.

    The flip is applied to the FSM environment at the start of the
    injection cycle, before that cycle's evaluation -- the same
    observation window as :func:`run_rtl_fault`.
    """
    by_tick = _resolve_frames(workload)
    golden = workload.golden
    expected = workload.expected
    outputs: List[Tuple[int, int]] = []
    detected: Optional[Tuple[int, str]] = None
    tick = 0
    try:
        sim = BehavioralSimulation(params, fsm=fsm, backend=backend)
        driver = BehavioralDutDriver(sim, params)
        while tick <= workload.cycle_budget and len(outputs) < expected:
            if tick == fault.cycle:
                env = sim.interp.env
                env[fault.target] = env[fault.target] ^ (1 << fault.bit)
            frame, cfg, req = _workload_stimulus(by_tick.get(tick, ()))
            result = driver.cycle(frame=frame, cfg=cfg, req=req)
            if result is not None:
                outputs.append(tuple(result))
            tick += 1
    except Exception as exc:  # model check fired: the fault was caught
        detected = (tick, f"{type(exc).__name__}: {exc}")
    return _classify(fault, outputs, detected, golden)


# ----------------------------------------------------------------------
# worker pool
# ----------------------------------------------------------------------

#: per-process campaign state, (re)built by :func:`_init_worker`
_WORKER: Dict[str, object] = {}


def _init_worker(params: SrcParams, level: str, seed: int,
                 budget: str, backend: str = "compiled") -> None:
    """(Re)build per-process campaign state.

    Pure function of its arguments, so forked workers (which inherit
    the parent's state -- detected via the key check) skip the rebuild,
    while spawned workers reconstruct identical state from scratch.
    """
    key = (params, level, seed, budget, backend)
    if _WORKER.get("key") == key:
        return
    _WORKER.clear()
    _WORKER["key"] = key
    _WORKER["params"] = params
    _WORKER["backend"] = backend
    with span("fi.workload", seed=seed, budget=budget):
        _WORKER["workload"] = make_workload(params, seed, budget)
    with span("fi.build_dut", level=level):
        if level == "gate":
            _WORKER["netlist"] = build_campaign_netlist(params)
        elif level == "beh":
            _WORKER["fsm"] = build_main_fsm(params, True)
        else:
            _WORKER["module"] = build_module(params, Level.RTL_OPT)


# The cross-process compile-cache aggregation (snapshot / delta /
# absorb) now lives in :mod:`repro.compile_cache`, shared with the
# parallel verification harness, the campaign service and the artifact
# writers; the historical names are kept as aliases for existing
# callers.
cache_counters = counters_snapshot
cache_delta = counters_delta
absorb_cache_deltas = absorb_deltas


def _gate_batch_task(faults: Sequence[Fault]):
    """Pool task: classify one batch; returns records + cache deltas."""
    before = counters_snapshot()
    with span("fi.batch", level="gate", n_faults=len(faults)):
        try:
            records = run_gate_batch(_WORKER["netlist"],
                                     _WORKER["workload"],
                                     faults, _WORKER["params"],
                                     backend=_WORKER.get("backend",
                                                         "compiled"))
        except CampaignError:
            raise
        except Exception:
            # a whole-batch failure cannot be attributed to one fault:
            # isolate by re-running each fault in its own
            # single-pattern run
            records = [
                run_gate_fault_scalar(_WORKER["netlist"],
                                      _WORKER["workload"],
                                      fault, _WORKER["params"],
                                      backend="compiled")
                for fault in faults
            ]
    after = counters_snapshot()
    return records, counters_delta(before, after)


def _rtl_fault_task(fault: Fault):
    """Pool task: classify one RTL fault; returns record + cache deltas."""
    before = counters_snapshot()
    with span("fi.fault", level="rtl", target=fault.target):
        record = run_rtl_fault(_WORKER["module"], _WORKER["workload"],
                               fault, _WORKER["params"],
                               backend=_WORKER.get("backend",
                                                   "compiled"))
    after = counters_snapshot()
    return record, counters_delta(before, after)


def _rtl_batch_task(faults: Sequence[Fault]):
    """Pool task: classify one vectorized RTL sweep; records + deltas."""
    before = counters_snapshot()
    with span("fi.batch", level="rtl", n_faults=len(faults)):
        try:
            records = run_rtl_batch(_WORKER["module"], _WORKER["workload"],
                                    faults, _WORKER["params"])
        except CampaignError:
            raise
        except Exception:
            # a whole-sweep failure cannot be attributed to one fault:
            # isolate by re-running each fault in its own scalar run
            records = [
                run_rtl_fault(_WORKER["module"], _WORKER["workload"],
                              fault, _WORKER["params"],
                              backend="compiled")
                for fault in faults
            ]
    after = counters_snapshot()
    return records, counters_delta(before, after)


def _beh_batch_task(faults: Sequence[Fault]):
    """Pool task: classify one behavioural batch; records + deltas."""
    before = counters_snapshot()
    with span("fi.batch", level="beh", n_faults=len(faults)):
        try:
            records = run_beh_batch(_WORKER["fsm"], _WORKER["workload"],
                                    faults, _WORKER["params"],
                                    backend=_WORKER.get("backend",
                                                        "compiled"))
        except CampaignError:
            raise
        except Exception:
            # a whole-batch failure cannot be attributed to one fault:
            # isolate by re-running each fault in its own scalar run
            records = [
                run_beh_fault_scalar(_WORKER["fsm"], _WORKER["workload"],
                                     fault, _WORKER["params"],
                                     backend="compiled")
                for fault in faults
            ]
    after = counters_snapshot()
    return records, counters_delta(before, after)


class PoolInterrupted(KeyboardInterrupt):
    """A cancelled parallel run, carrying the results finished so far.

    Raised by :func:`parallel_map` when the run is interrupted
    (Ctrl-C, cancellation): the pool has already been torn down --
    terminated *and* joined, no orphaned workers -- and ``partial``
    holds the completed leading results in task order, so callers can
    surface a partial report instead of losing the whole run.
    """

    def __init__(self, partial: Sequence) -> None:
        super().__init__()
        self.partial = list(partial)


def parallel_map(fn, tasks: Sequence, jobs: int,
                 initializer=None, initargs=()) -> List:
    """``map(fn, tasks)`` over a worker pool, order-preserving.

    With ``jobs <= 1`` (or a single task) everything runs in-process.
    Fork is preferred -- workers inherit built state for free -- with
    spawn as the fallback; *initializer* must rebuild any needed state
    deterministically, which keeps both start methods equivalent.

    Teardown is explicit on every exit path: a task failure or an
    interrupt terminates the pool and *joins* it before re-raising, so
    no worker process outlives the call; an interrupt re-raises as
    :class:`PoolInterrupted` with the results completed so far.

    When tracing is enabled the task function is transparently wrapped
    so workers adopt the parent's trace context and ship their new
    spans back with each result; the parent absorbs them as results
    stream in, so partial (interrupted) runs keep their spans too.
    """
    if jobs <= 1 or len(tasks) <= 1:
        if initializer is not None:
            initializer(*initargs)
        results = []
        try:
            for task in tasks:
                results.append(fn(task))
        except KeyboardInterrupt:
            raise PoolInterrupted(results) from None
        return results
    trace_ctx = current_context()
    task_fn = fn if trace_ctx is None else TracedTask(fn, trace_ctx)
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")
    pool = ctx.Pool(min(jobs, len(tasks)), initializer, initargs)
    results = []
    try:
        for result in pool.imap(task_fn, tasks):
            if trace_ctx is not None:
                result, events = result
                absorb_events(events)
            results.append(result)
        pool.close()
        pool.join()
        return results
    except KeyboardInterrupt:
        pool.terminate()
        pool.join()
        raise PoolInterrupted(results) from None
    except BaseException:
        pool.terminate()
        pool.join()
        raise


# ----------------------------------------------------------------------
# campaign entry points
# ----------------------------------------------------------------------

def _vector_chunk(n_faults: int, jobs: int) -> int:
    """Vectorized task width: the whole faultload per worker.

    The vectorized engine has no machine-word pattern cap, so its
    batches are never truncated to the compiled backend's 64-pattern
    width -- the faultload is split only as far as needed to feed every
    pool worker one sweep.
    """
    return max(1, -(-n_faults // max(jobs, 1)))


def campaign_faultload(config: CampaignConfig) -> Tuple[List[Fault], str]:
    """The campaign's deterministic faultload and its DUT name.

    Requires the per-process campaign state (:func:`_init_worker` with
    the config's parameters), so the DUT is already built.  The result
    is a pure function of the config -- the property that lets the
    campaign service content-address classification results by
    faultload digest and serve identical requests from its cache.
    """
    workload: Workload = _WORKER["workload"]  # type: ignore[assignment]
    if config.level == "gate":
        netlist = _WORKER["netlist"]
        faults = generate_gate_faultload(
            netlist, config.n_faults, config.seed, workload.cycle_budget,
            models=config.models, exhaustive=config.exhaustive)
        return faults, netlist.name
    if config.level == "beh":
        fsm = _WORKER["fsm"]
        faults = generate_beh_faultload(
            fsm, config.n_faults, config.seed, workload.cycle_budget,
            exhaustive=config.exhaustive)
        return faults, fsm.name
    module = _WORKER["module"]
    faults = generate_rtl_faultload(
        module, config.n_faults, config.seed, workload.cycle_budget,
        exhaustive=config.exhaustive)
    return faults, module.name


def run_campaign(config: CampaignConfig) -> CampaignReport:
    """Run a full fault-injection campaign per *config*.

    Classifies every fault on the configured batch engine (compiled
    word-width batches or whole-faultload vectorized sweeps), then
    re-runs a probe slice on the remaining engines to measure every
    engine's injection throughput -- cross-checking that the probe's
    classifications agree exactly.

    An interrupt (Ctrl-C) does not lose the run: the pool is torn down
    cleanly and the report carries every fault classified so far,
    flagged ``interrupted`` (throughput probes are skipped).
    """
    config = config.validated()
    with span("fi.campaign", level=config.level, backend=config.backend,
              n_faults=config.n_faults, jobs=config.jobs):
        return _run_campaign(config)


def _run_campaign(config: CampaignConfig) -> CampaignReport:
    _init_worker(config.params, config.level, config.seed, config.budget,
                 config.backend)
    workload: Workload = _WORKER["workload"]  # type: ignore[assignment]
    backend = config.backend
    with span("fi.faultload", level=config.level) as faultload_span:
        faults, design = campaign_faultload(config)
        faultload_span.note(n_faults=len(faults))

    if config.level == "gate":
        chunk = (_vector_chunk(len(faults), config.jobs)
                 if backend == "vectorized" else config.batch_size)
        tasks = [faults[i:i + chunk]
                 for i in range(0, len(faults), chunk)]
        task_fn = _gate_batch_task
    elif config.level == "beh":
        chunk = (_vector_chunk(len(faults), config.jobs)
                 if backend == "vectorized" else config.batch_size)
        tasks = [faults[i:i + chunk]
                 for i in range(0, len(faults), chunk)]
        task_fn = _beh_batch_task
    else:
        if backend == "vectorized":
            chunk = _vector_chunk(len(faults), config.jobs)
            tasks = [faults[i:i + chunk]
                     for i in range(0, len(faults), chunk)]
            task_fn = _rtl_batch_task
        else:
            tasks = list(faults)
            task_fn = _rtl_fault_task

    interrupted = False
    t0 = time.perf_counter()
    try:
        results = parallel_map(
            task_fn, tasks, config.jobs, initializer=_init_worker,
            initargs=(config.params, config.level, config.seed,
                      config.budget, config.backend))
    except PoolInterrupted as stop:
        results = stop.partial
        interrupted = True
    main_wall = time.perf_counter() - t0
    if config.jobs > 1 and len(tasks) > 1:
        # pool runs hit worker-local caches; in-process runs already
        # counted against the parent's, so absorbing would double-count
        absorb_cache_deltas([r[1] for r in results])
    if task_fn is _rtl_fault_task:
        records = [rec for rec, _ in results]
    else:
        records = [rec for batch, _ in results for rec in batch]
    for outcome, count in tally(records).items():
        if count:
            REGISTRY.counter(
                "repro_fi_outcomes_total",
                help="Fault classifications by outcome",
                level=config.level, outcome=outcome).inc(count)

    throughput = [Throughput(backend, len(records) if interrupted
                             else len(faults), main_wall)]
    if interrupted:
        cache_stats = aggregate_stats()
        return CampaignReport(
            level=config.level, design=design, seed=config.seed,
            budget=config.budget, jobs=config.jobs,
            backend=config.backend,
            n_workload_frames=workload.case.n_inputs,
            cycle_budget=workload.cycle_budget, records=records,
            throughput=throughput, cache_stats=cache_stats,
            interrupted=True)
    probe = faults[:min(config.probe_faults, len(faults))]

    if backend in ("vectorized", "native") and probe:
        # compiled-engine probe: the word-width batch baseline the
        # vectorized sweep (or native C batch) replaces, on the same
        # leading faults
        probe_wall0 = time.time()
        t0 = time.perf_counter()
        compiled_records: List[FaultRecord] = []
        if config.level == "gate":
            for i in range(0, len(probe), config.batch_size):
                compiled_records += run_gate_batch(
                    _WORKER["netlist"], workload,
                    probe[i:i + config.batch_size], config.params,
                    backend="compiled")
        elif config.level == "beh":
            for i in range(0, len(probe), config.batch_size):
                compiled_records += run_beh_batch(
                    _WORKER["fsm"], workload,
                    probe[i:i + config.batch_size], config.params,
                    backend="compiled")
        else:
            compiled_records = [
                run_rtl_fault(_WORKER["module"], workload, fault,
                              config.params, backend="compiled")
                for fault in probe]
        compiled_wall = time.perf_counter() - t0
        for fault, main_record, comp in zip(probe, records,
                                            compiled_records):
            if comp.outcome != main_record.outcome:
                raise CampaignError(
                    f"engines disagree on {fault.format()}: compiled "
                    f"says {comp.outcome}, {backend} says "
                    f"{main_record.outcome}")
        throughput.append(
            Throughput("compiled", len(probe), compiled_wall))
        record_span("fi.probe", probe_wall0, time.time(),
                    engine="compiled", n_faults=len(probe))

    # interpreted-engine probe: same faults, same classifications
    probe_wall0 = time.time()
    t0 = time.perf_counter()
    for fault, main_record in zip(probe, records):
        if config.level == "gate":
            interp = run_gate_fault_scalar(
                _WORKER["netlist"], workload, fault, config.params,
                backend="interpreted")
        elif config.level == "beh":
            interp = run_beh_fault_scalar(
                _WORKER["fsm"], workload, fault, config.params,
                backend="interpreted")
        else:
            interp = run_rtl_fault(
                _WORKER["module"], workload, fault, config.params,
                backend="interpreted")
        if interp.outcome != main_record.outcome:
            raise CampaignError(
                f"engines disagree on {fault.format()}: interpreted says "
                f"{interp.outcome}, {backend} says "
                f"{main_record.outcome}")
    interp_wall = time.perf_counter() - t0
    throughput.append(Throughput("interpreted", len(probe), interp_wall))
    record_span("fi.probe", probe_wall0, time.time(),
                engine="interpreted", n_faults=len(probe))

    cache_stats = aggregate_stats()

    report = CampaignReport(
        level=config.level, design=design, seed=config.seed,
        budget=config.budget, jobs=config.jobs,
        backend=config.backend,
        n_workload_frames=workload.case.n_inputs,
        cycle_budget=workload.cycle_budget, records=records,
        throughput=throughput,
        cache_stats=cache_stats,
    )
    return report


def run_fi_self_check(config: CampaignConfig) -> SelfCheckResult:
    """Classify one known-SDC and one known-masked fault.

    The known-SDC fault sticks the ``out_l`` LSB at the polarity that
    contradicts at least one golden frame, so the stream must corrupt
    silently.  The known-masked fault sticks ``scan_en`` at 0 -- the
    workload never asserts scan mode, so forcing its idle value cannot
    change anything.  Both run through the regular batch classifier;
    misclassification of either means the campaign machinery is broken.
    """
    config = config.validated()
    _init_worker(config.params, "gate", config.seed, config.budget)
    netlist = _WORKER["netlist"]
    workload: Workload = _WORKER["workload"]  # type: ignore[assignment]
    if not workload.golden:
        raise CampaignError("self-check needs a non-empty golden stream")

    out_net = netlist.outputs["out_l"][0]
    # pick the stuck polarity that some golden frame contradicts
    if any(frame[0] & 1 for frame in workload.golden):
        sdc_model, sdc_value = "stuck0", 0
    else:
        sdc_model, sdc_value = "stuck1", 1
    sdc_fault = Fault(0, sdc_model, "gate", "net", out_net.name,
                      uid=out_net.uid, value=sdc_value)

    scan_en = netlist.inputs["scan_en"][0]
    masked_fault = Fault(1, "stuck0", "gate", "net", scan_en.name,
                         uid=scan_en.uid, value=0)

    records = run_gate_batch(netlist, workload,
                             [sdc_fault, masked_fault], config.params)
    return SelfCheckResult(sdc_record=records[0],
                           masked_record=records[1])
