"""Fixed-point values with quantisation and overflow modes (``sc_fixed``).

Used when quantising the SRC's floating-point prototype filter into the
coefficient ROM: the design flow turns real coefficients into Q-format
integers with a selectable rounding and overflow behaviour.
"""

from __future__ import annotations

import enum
import math
from typing import Union

from .integers import (saturate_signed, saturate_unsigned, wrap_signed,
                       wrap_unsigned)


class Rounding(enum.Enum):
    """Quantisation behaviour for bits below the LSB."""

    #: round to nearest, ties away from zero (SystemC ``SC_RND``)
    ROUND = "round"
    #: truncate toward negative infinity (SystemC ``SC_TRN``)
    TRUNCATE = "truncate"
    #: truncate toward zero (SystemC ``SC_TRN_ZERO``)
    TRUNCATE_ZERO = "truncate_zero"


class Overflow(enum.Enum):
    """Behaviour when the value exceeds the representable range."""

    SATURATE = "saturate"  # SystemC ``SC_SAT``
    WRAP = "wrap"          # SystemC ``SC_WRAP``


class Fixed:
    """A signed fixed-point number: *wl* total bits, *iwl* integer bits.

    The stored representation is the raw integer ``raw`` with the value
    ``raw * 2**-(wl - iwl)``.  ``iwl`` counts the sign bit, matching the
    SystemC convention, so ``Fixed(16, 1)`` is the audio Q1.15 format.
    """

    __slots__ = ("wl", "iwl", "raw")

    def __init__(self, wl: int, iwl: int, raw: int = 0):
        if wl < 1:
            raise ValueError(f"word length must be >= 1, got {wl}")
        if iwl < 0 or iwl > wl:
            raise ValueError(f"integer width {iwl} outside [0, {wl}]")
        self.wl = wl
        self.iwl = iwl
        self.raw = wrap_signed(raw, wl)

    @property
    def frac_bits(self) -> int:
        return self.wl - self.iwl

    # ------------------------------------------------------------------
    @classmethod
    def from_float(
        cls,
        value: float,
        wl: int,
        iwl: int,
        rounding: Rounding = Rounding.ROUND,
        overflow: Overflow = Overflow.SATURATE,
    ) -> "Fixed":
        """Quantise *value* into the (wl, iwl) format."""
        scaled = value * (1 << (wl - iwl))
        if rounding is Rounding.ROUND:
            raw = int(math.floor(scaled + 0.5))
        elif rounding is Rounding.TRUNCATE:
            raw = int(math.floor(scaled))
        elif rounding is Rounding.TRUNCATE_ZERO:
            raw = int(scaled)
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown rounding {rounding!r}")
        if overflow is Overflow.SATURATE:
            raw = saturate_signed(raw, wl)
        else:
            raw = wrap_signed(raw, wl)
        return cls(wl, iwl, raw)

    def to_float(self) -> float:
        return self.raw / (1 << self.frac_bits)

    # ------------------------------------------------------------------
    def _align(self, other: "Fixed"):
        frac = max(self.frac_bits, other.frac_bits)
        return (
            self.raw << (frac - self.frac_bits),
            other.raw << (frac - other.frac_bits),
            frac,
        )

    def __add__(self, other: "Fixed") -> "Fixed":
        a, b, frac = self._align(other)
        total = a + b
        iwl = max(self.iwl, other.iwl) + 1
        return Fixed(iwl + frac, iwl, total)

    def __sub__(self, other: "Fixed") -> "Fixed":
        a, b, frac = self._align(other)
        total = a - b
        iwl = max(self.iwl, other.iwl) + 1
        return Fixed(iwl + frac, iwl, total)

    def __mul__(self, other: "Fixed") -> "Fixed":
        raw = self.raw * other.raw
        return Fixed(self.wl + other.wl, self.iwl + other.iwl, raw)

    def __neg__(self) -> "Fixed":
        return Fixed(self.wl + 1, self.iwl + 1, -self.raw)

    def quantize(
        self,
        wl: int,
        iwl: int,
        rounding: Rounding = Rounding.ROUND,
        overflow: Overflow = Overflow.SATURATE,
    ) -> "Fixed":
        """Re-quantise into a new (wl, iwl) format."""
        shift = self.frac_bits - (wl - iwl)
        raw = self.raw
        if shift > 0:
            if rounding is Rounding.ROUND:
                raw = (raw + (1 << (shift - 1))) >> shift
            elif rounding is Rounding.TRUNCATE:
                raw >>= shift
            else:  # TRUNCATE_ZERO
                sign = -1 if raw < 0 else 1
                raw = sign * (abs(raw) >> shift)
        elif shift < 0:
            raw <<= -shift
        if overflow is Overflow.SATURATE:
            raw = saturate_signed(raw, wl)
        else:
            raw = wrap_signed(raw, wl)
        return Fixed(wl, iwl, raw)

    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if isinstance(other, Fixed):
            a, b, _ = self._align(other)
            return a == b
        return NotImplemented

    def __lt__(self, other: "Fixed") -> bool:
        a, b, _ = self._align(other)
        return a < b

    def __hash__(self) -> int:
        return hash(("Fixed", self.to_float()))

    def __repr__(self) -> str:
        return f"Fixed({self.wl}, {self.iwl}, raw={self.raw}, value={self.to_float()})"
