"""Fixed-width integers with SystemC ``sc_int``/``sc_uint`` semantics.

The paper's *type refinement* step replaces native C/C++ integers with
explicitly-sized SystemC integers.  These classes mirror that: arithmetic
between fixed-width integers promotes to plain Python ``int`` (SystemC
promotes to 64-bit), and assignment back into a sized type *truncates*
(wraps) to the declared width.  Helper functions provide saturation, the
alternative overflow behaviour hardware designers reach for.
"""

from __future__ import annotations

from typing import Union

from .bits import Bits, mask

IntLike = Union[int, "UInt", "SInt", Bits]


def wrap_unsigned(value: int, width: int) -> int:
    """Truncate *value* to *width* unsigned bits (wrap-around)."""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    return value & mask(width)


def wrap_signed(value: int, width: int) -> int:
    """Truncate *value* to *width* signed (two's complement) bits."""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    value &= mask(width)
    if value & (1 << (width - 1)):
        value -= 1 << width
    return value


def saturate_unsigned(value: int, width: int) -> int:
    """Clamp *value* into ``[0, 2**width - 1]``."""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    return min(max(value, 0), mask(width))


def saturate_signed(value: int, width: int) -> int:
    """Clamp *value* into ``[-2**(width-1), 2**(width-1) - 1]``."""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    return min(max(value, lo), hi)


def min_signed(width: int) -> int:
    return -(1 << (width - 1))


def max_signed(width: int) -> int:
    return (1 << (width - 1)) - 1


def max_unsigned(width: int) -> int:
    return mask(width)


def bits_for_unsigned(max_value: int) -> int:
    """Minimum width holding unsigned values up to *max_value*."""
    if max_value < 0:
        raise ValueError(f"max_value must be >= 0, got {max_value}")
    return max(1, max_value.bit_length())


def bits_for_signed(min_value: int, max_value: int) -> int:
    """Minimum signed width holding the closed range [min, max]."""
    width = 1
    while not (min_signed(width) <= min_value and max_value <= max_signed(width)):
        width += 1
    return width


class _SizedInt:
    """Common behaviour of :class:`UInt` and :class:`SInt`."""

    __slots__ = ("width", "_value")
    _signed = False

    def __init__(self, width: int, value: IntLike = 0):
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self.width = width
        self._value = self._wrap(int(value), width)

    @staticmethod
    def _wrap(value: int, width: int) -> int:
        raise NotImplementedError

    # -- conversions ------------------------------------------------------
    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __float__(self) -> float:
        return float(self._value)

    def to_bits(self) -> Bits:
        return Bits(self.width, self._value)

    @property
    def value(self) -> int:
        return self._value

    # -- arithmetic (promotes to int, as SystemC promotes to 64-bit) -------
    def __add__(self, other: IntLike) -> int:
        return self._value + int(other)

    def __radd__(self, other: int) -> int:
        return int(other) + self._value

    def __sub__(self, other: IntLike) -> int:
        return self._value - int(other)

    def __rsub__(self, other: int) -> int:
        return int(other) - self._value

    def __mul__(self, other: IntLike) -> int:
        return self._value * int(other)

    def __rmul__(self, other: int) -> int:
        return int(other) * self._value

    def __neg__(self) -> int:
        return -self._value

    def __lshift__(self, amount: int) -> int:
        return self._value << amount

    def __rshift__(self, amount: int) -> int:
        return self._value >> amount

    def __and__(self, other: IntLike) -> int:
        return self._value & int(other)

    def __or__(self, other: IntLike) -> int:
        return self._value | int(other)

    def __xor__(self, other: IntLike) -> int:
        return self._value ^ int(other)

    def __floordiv__(self, other: IntLike) -> int:
        return self._value // int(other)

    def __mod__(self, other: IntLike) -> int:
        return self._value % int(other)

    def __abs__(self) -> int:
        return abs(self._value)

    # -- comparisons --------------------------------------------------------
    def __eq__(self, other) -> bool:
        if isinstance(other, (_SizedInt, int)):
            return self._value == int(other)
        return NotImplemented

    def __lt__(self, other: IntLike) -> bool:
        return self._value < int(other)

    def __le__(self, other: IntLike) -> bool:
        return self._value <= int(other)

    def __gt__(self, other: IntLike) -> bool:
        return self._value > int(other)

    def __ge__(self, other: IntLike) -> bool:
        return self._value >= int(other)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.width, self._value))

    def __bool__(self) -> bool:
        return bool(self._value)

    # -- width manipulation ---------------------------------------------
    def resize(self, width: int) -> "_SizedInt":
        """Truncate/extend to *width* bits (wrapping on truncation)."""
        return type(self)(width, self._value)

    def saturated(self, width: int) -> "_SizedInt":
        """Clamp into the representable range of *width* bits."""
        if self._signed:
            return type(self)(width, saturate_signed(self._value, width))
        return type(self)(width, saturate_unsigned(self._value, width))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.width}, {self._value})"


class UInt(_SizedInt):
    """Unsigned integer of a fixed bit width (``sc_uint``)."""

    _signed = False

    @staticmethod
    def _wrap(value: int, width: int) -> int:
        return wrap_unsigned(value, width)


class SInt(_SizedInt):
    """Signed two's-complement integer of a fixed bit width (``sc_int``)."""

    _signed = True

    @staticmethod
    def _wrap(value: int, width: int) -> int:
        return wrap_signed(value, width)
