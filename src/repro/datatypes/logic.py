"""Four-valued logic for gate-level simulation (``sc_logic``).

Values are small integers for speed in the event-driven gate simulator:

* ``L0`` (0) -- strong 0,
* ``L1`` (1) -- strong 1,
* ``LX`` (2) -- unknown,
* ``LZ`` (3) -- high impedance.

Truth tables follow IEEE 1164: anything involving X or Z yields X unless a
controlling value decides the output (0 AND X = 0, 1 OR X = 1).
"""

from __future__ import annotations

from typing import Iterable, Sequence

L0 = 0
L1 = 1
LX = 2
LZ = 3

_CHARS = "01XZ"

#: 4x4 truth tables indexed [a][b]; Z behaves as X on gate inputs.
AND_TABLE = (
    (L0, L0, L0, L0),
    (L0, L1, LX, LX),
    (L0, LX, LX, LX),
    (L0, LX, LX, LX),
)

OR_TABLE = (
    (L0, L1, LX, LX),
    (L1, L1, L1, L1),
    (LX, L1, LX, LX),
    (LX, L1, LX, LX),
)

XOR_TABLE = (
    (L0, L1, LX, LX),
    (L1, L0, LX, LX),
    (LX, LX, LX, LX),
    (LX, LX, LX, LX),
)

NOT_TABLE = (L1, L0, LX, LX)


def logic_and(a: int, b: int) -> int:
    return AND_TABLE[a][b]


def logic_or(a: int, b: int) -> int:
    return OR_TABLE[a][b]


def logic_xor(a: int, b: int) -> int:
    return XOR_TABLE[a][b]


def logic_not(a: int) -> int:
    return NOT_TABLE[a]


def logic_mux(sel: int, a: int, b: int) -> int:
    """2:1 mux: output = *b* when sel=1 else *a*; X-pessimistic on sel."""
    if sel == L0:
        return a
    if sel == L1:
        return b
    # Unknown select: output known only if both inputs agree on 0/1.
    if a == b and a in (L0, L1):
        return a
    return LX

def resolve(drivers: Iterable[int]) -> int:
    """Resolve multiple drivers on one net (IEEE 1164 'wire' resolution)."""
    result = LZ
    for value in drivers:
        if value == LZ:
            continue
        if result == LZ:
            result = value
        elif result != value:
            return LX
    return result


def from_bool(value) -> int:
    return L1 if value else L0


def to_int(value: int) -> int:
    """Convert a known logic value to 0/1; X/Z raise ``ValueError``."""
    if value in (L0, L1):
        return value
    raise ValueError(f"logic value {to_char(value)} has no integer meaning")


def is_known(value: int) -> bool:
    return value in (L0, L1)


def to_char(value: int) -> str:
    return _CHARS[value]


def from_char(ch: str) -> int:
    try:
        return _CHARS.index(ch.upper())
    except ValueError:
        raise ValueError(f"invalid logic character {ch!r}") from None


def vector_to_int(values: Sequence[int]) -> int:
    """Interpret *values* (LSB first) as an unsigned integer; X/Z raise."""
    out = 0
    for i, v in enumerate(values):
        out |= to_int(v) << i
    return out


def int_to_vector(value: int, width: int) -> list:
    """Expand an unsigned integer into logic values, LSB first."""
    return [(value >> i) & 1 for i in range(width)]
