"""Hardware datatypes: bit vectors, sized integers, fixed point, 4-valued logic."""

from .bits import Bits, concat, mask
from .fixed import Fixed, Overflow, Rounding
from .integers import (SInt, UInt, bits_for_signed, bits_for_unsigned,
                       max_signed, max_unsigned, min_signed, saturate_signed,
                       saturate_unsigned, wrap_signed, wrap_unsigned)
from .logic import (L0, L1, LX, LZ, from_bool, from_char, int_to_vector,
                    is_known, logic_and, logic_mux, logic_not, logic_or,
                    logic_xor, resolve, to_char, to_int, vector_to_int)

__all__ = [
    "Bits", "Fixed", "L0", "L1", "LX", "LZ", "Overflow", "Rounding", "SInt",
    "UInt", "bits_for_signed", "bits_for_unsigned", "concat", "from_bool",
    "from_char", "int_to_vector", "is_known", "logic_and", "logic_mux",
    "logic_not", "logic_or", "logic_xor", "mask", "max_signed",
    "max_unsigned", "min_signed", "resolve", "saturate_signed",
    "saturate_unsigned", "to_char", "to_int", "vector_to_int",
    "wrap_signed", "wrap_unsigned",
]
