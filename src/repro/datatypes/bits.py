"""Fixed-width bit vectors (SystemC ``sc_bv``/``sc_lv`` value semantics).

:class:`Bits` is an immutable vector of 0/1 bits with SystemC-style
inclusive ``[msb:lsb]`` slicing, concatenation, and reduction operators.
All mutating-style operations return new values.
"""

from __future__ import annotations

from typing import Iterable, Union

IntLike = Union[int, "Bits"]


def mask(width: int) -> int:
    """All-ones mask of *width* bits."""
    if width < 0:
        raise ValueError(f"negative width: {width}")
    return (1 << width) - 1


class Bits:
    """An immutable *width*-bit vector holding an unsigned value."""

    __slots__ = ("width", "_value")

    def __init__(self, width: int, value: IntLike = 0):
        if width < 1:
            raise ValueError(f"Bits width must be >= 1, got {width}")
        self.width = width
        self._value = int(value) & mask(width)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def to_unsigned(self) -> int:
        """Value as an unsigned integer in ``[0, 2**width)``."""
        return self._value

    def to_signed(self) -> int:
        """Value as a two's-complement signed integer."""
        if self._value & (1 << (self.width - 1)):
            return self._value - (1 << self.width)
        return self._value

    def to_binary_string(self) -> str:
        return format(self._value, f"0{self.width}b")

    @classmethod
    def from_signed(cls, width: int, value: int) -> "Bits":
        return cls(width, value)

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "Bits":
        """Build from an iterable of bits, LSB first."""
        bit_list = list(bits)
        value = 0
        for i, b in enumerate(bit_list):
            if b not in (0, 1):
                raise ValueError(f"bit value must be 0 or 1, got {b!r}")
            value |= b << i
        return cls(max(1, len(bit_list)), value)

    # ------------------------------------------------------------------
    # bit and slice access (SystemC inclusive [msb:lsb] convention)
    # ------------------------------------------------------------------
    def __getitem__(self, key):
        if isinstance(key, slice):
            if key.step is not None:
                raise ValueError("Bits slices do not support a step")
            hi, lo = key.start, key.stop
            if hi is None or lo is None:
                raise ValueError("Bits slices need explicit [msb:lsb] bounds")
            return self.slice(hi, lo)
        return self.bit(key)

    def bit(self, index: int) -> int:
        if not 0 <= index < self.width:
            raise IndexError(
                f"bit index {index} out of range for width {self.width}"
            )
        return (self._value >> index) & 1

    def slice(self, msb: int, lsb: int) -> "Bits":
        """Inclusive bit-range ``[msb:lsb]`` as a new :class:`Bits`."""
        if msb < lsb:
            raise ValueError(f"slice msb ({msb}) < lsb ({lsb})")
        if msb >= self.width or lsb < 0:
            raise IndexError(
                f"slice [{msb}:{lsb}] out of range for width {self.width}"
            )
        return Bits(msb - lsb + 1, self._value >> lsb)

    def set_bit(self, index: int, bit: int) -> "Bits":
        if not 0 <= index < self.width:
            raise IndexError(
                f"bit index {index} out of range for width {self.width}"
            )
        if bit not in (0, 1):
            raise ValueError(f"bit value must be 0 or 1, got {bit!r}")
        if bit:
            return Bits(self.width, self._value | (1 << index))
        return Bits(self.width, self._value & ~(1 << index))

    def set_slice(self, msb: int, lsb: int, value: IntLike) -> "Bits":
        if msb < lsb:
            raise ValueError(f"slice msb ({msb}) < lsb ({lsb})")
        if msb >= self.width or lsb < 0:
            raise IndexError(
                f"slice [{msb}:{lsb}] out of range for width {self.width}"
            )
        field = mask(msb - lsb + 1)
        cleared = self._value & ~(field << lsb)
        return Bits(self.width, cleared | ((int(value) & field) << lsb))

    # ------------------------------------------------------------------
    # operators
    # ------------------------------------------------------------------
    def _coerce(self, other: IntLike) -> int:
        return int(other)

    def __and__(self, other: IntLike) -> "Bits":
        return Bits(self.width, self._value & self._coerce(other))

    def __or__(self, other: IntLike) -> "Bits":
        return Bits(self.width, self._value | self._coerce(other))

    def __xor__(self, other: IntLike) -> "Bits":
        return Bits(self.width, self._value ^ self._coerce(other))

    __rand__ = __and__
    __ror__ = __or__
    __rxor__ = __xor__

    def __invert__(self) -> "Bits":
        return Bits(self.width, ~self._value)

    def __lshift__(self, amount: int) -> "Bits":
        return Bits(self.width, self._value << amount)

    def __rshift__(self, amount: int) -> "Bits":
        return Bits(self.width, self._value >> amount)

    def __eq__(self, other) -> bool:
        if isinstance(other, Bits):
            return self.width == other.width and self._value == other._value
        if isinstance(other, int):
            return self._value == other & mask(self.width) and other >= 0
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.width, self._value))

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def concat(self, *others: "Bits") -> "Bits":
        """Concatenate, self as the most-significant part."""
        value = self._value
        width = self.width
        for other in others:
            value = (value << other.width) | other._value
            width += other.width
        return Bits(width, value)

    def __matmul__(self, other: "Bits") -> "Bits":
        return self.concat(other)

    def resize(self, width: int, signed: bool = False) -> "Bits":
        """Zero- or sign-extend / truncate to *width* bits."""
        if signed:
            return Bits(width, self.to_signed())
        return Bits(width, self._value)

    def reduce_and(self) -> int:
        return 1 if self._value == mask(self.width) else 0

    def reduce_or(self) -> int:
        return 1 if self._value else 0

    def reduce_xor(self) -> int:
        return bin(self._value).count("1") & 1

    def reversed(self) -> "Bits":
        value = 0
        for i in range(self.width):
            value = (value << 1) | ((self._value >> i) & 1)
        return Bits(self.width, value)

    def __len__(self) -> int:
        return self.width

    def __repr__(self) -> str:
        return f"Bits({self.width}, 0b{self.to_binary_string()})"


def concat(*parts: Bits) -> Bits:
    """Concatenate *parts*, first argument most significant."""
    if not parts:
        raise ValueError("concat needs at least one part")
    return parts[0].concat(*parts[1:])
