"""Lockstep differential execution of abstraction levels.

Drives any set of abstraction levels -- algorithmic golden, TLM,
behavioural, RTL and gate level (each either interpreted or compiled)
-- over one :class:`~repro.verify.stimulus.StimulusCase` and
diffs every level bit-exactly against the golden model of its schedule
domain:

* untimed levels (C++, TLM) compare against the golden model on the
  *exact* event schedule;
* clocked levels compare against the golden model re-run on the
  *clock-quantised* schedule (the paper's Figure 7 propagation).

Because every level is compared against the shared golden reference,
agreement is transitive: a clean report means every *pair* of levels
agrees bit-exactly.  A divergence is localised to the first differing
output frame, the differing signal (``out_l`` / ``out_r`` / stream
length) and -- for clocked levels -- the clock cycle on which the DUT
produced that frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..flow.refinement import Level, build_module
from ..gatesim import GateSimulator
from ..obs.trace import span
from ..rtl import RtlSimulator
from ..src_design.algorithmic import AlgorithmicSrc
from ..src_design.behavioral import BehavioralSimulation
from ..src_design.params import SrcParams
from ..src_design.schedule import make_schedule
from ..src_design.testbench import (BehavioralDutDriver, RtlDutDriver,
                                    run_clocked, run_tlm)
from ..synth import synthesize
from .stimulus import StimulusCase

#: CLI-facing level aliases
LEVEL_ALIASES = {
    "alg": Level.ALGORITHMIC,
    "tlm": Level.TLM_REFINED,
    "tlm-mono": Level.TLM_MONOLITHIC,
    "beh": Level.BEH_OPT,
    "beh-unopt": Level.BEH_UNOPT,
    "rtl": Level.RTL_OPT,
    "rtl-unopt": Level.RTL_UNOPT,
    "vhdl": Level.VHDL_REF,
    "gate": Level.GATE_RTL,
    "gate-rtl": Level.GATE_RTL,
    "gate-beh": Level.GATE_BEH,
}

#: levels whose simulator has an interpreted/compiled engine choice
BACKEND_LEVELS = frozenset((
    Level.BEH_UNOPT, Level.BEH_OPT,
    Level.RTL_UNOPT, Level.RTL_OPT, Level.VHDL_REF,
    Level.GATE_BEH, Level.GATE_RTL,
))

#: the default level set of ``python -m repro verify``
DEFAULT_LEVELS = "alg,tlm,beh,rtl,gate"


@dataclass(frozen=True)
class LevelSpec:
    """One abstraction level plus the simulation engine driving it."""

    level: Level
    backend: str = "interpreted"

    @property
    def key(self) -> str:
        if self.level in BACKEND_LEVELS:
            return f"{self.level.value}/{self.backend}"
        return self.level.value

    @property
    def is_clocked(self) -> bool:
        return self.level.is_clocked


def parse_level_specs(text: str, backend: str = "interpreted"
                      ) -> List[LevelSpec]:
    """Parse a ``--levels`` string into level specs.

    *backend* is ``interpreted``, ``compiled``, ``vectorized``,
    ``native``, ``both`` (interpreted + compiled) or ``all`` (every
    engine); it applies to every level with an engine choice, and
    multi-engine selections yield one spec per engine so the engines
    are cross-checked against each other.  ``native`` degrades to
    ``compiled`` when no C toolchain is present.
    """
    groups = {
        "interpreted": ("interpreted",),
        "compiled": ("compiled",),
        "vectorized": ("vectorized",),
        "native": ("native",),
        "both": ("interpreted", "compiled"),
        "all": ("interpreted", "compiled", "vectorized", "native"),
    }
    if backend not in groups:
        raise ValueError(
            f"unknown backend {backend!r} "
            "(expected 'interpreted', 'compiled', 'vectorized', "
            "'native', 'both' or 'all')"
        )
    specs: List[LevelSpec] = []
    for token in text.split(","):
        token = token.strip().lower()
        if not token:
            continue
        level = LEVEL_ALIASES.get(token)
        if level is None:
            raise ValueError(
                f"unknown level {token!r} "
                f"(known: {', '.join(sorted(LEVEL_ALIASES))})"
            )
        if level in BACKEND_LEVELS:
            for b in groups[backend]:
                spec = LevelSpec(level, b)
                if spec not in specs:
                    specs.append(spec)
        else:
            spec = LevelSpec(level)
            if spec not in specs:
                specs.append(spec)
    if not specs:
        raise ValueError("no levels selected")
    return specs


class LevelBuilds:
    """Per-session cache of RTL modules and synthesised netlists.

    Building a module is cheap, synthesis is not; both are pure
    functions of ``params`` so one instance is shared across all cases
    of a verification run.  ``netlist_overrides`` substitutes a custom
    (e.g. deliberately mutated) netlist for a gate level -- the
    self-check mode uses this to prove the harness catches real bugs.
    """

    def __init__(self, params: SrcParams,
                 netlist_overrides: Optional[Dict[Level, object]] = None):
        self.params = params
        self.netlist_overrides = dict(netlist_overrides or {})
        self._modules: Dict[Level, object] = {}
        self._netlists: Dict[Level, object] = {}

    def module(self, level: Level):
        if level not in self._modules:
            self._modules[level] = build_module(self.params, level)
        return self._modules[level]

    def netlist(self, level: Level):
        if level in self.netlist_overrides:
            return self.netlist_overrides[level]
        if level not in self._netlists:
            self._netlists[level] = synthesize(self.module(level))
        return self._netlists[level]


@dataclass
class LevelRun:
    """Execution record of one level over one case."""

    spec: LevelSpec
    outputs: List[Tuple[int, ...]] = field(default_factory=list)
    #: clock tick each output frame appeared on (clocked levels only)
    ticks: Optional[List[int]] = None
    error: Optional[str] = None


@dataclass
class Divergence:
    """First point where a level left the golden reference."""

    frame: int                  # output sample index
    signal: str                 # "out_l", "out_r" or "length"
    cycle: Optional[int]        # DUT clock cycle (clocked levels)
    got: Optional[Tuple[int, ...]]
    want: Optional[Tuple[int, ...]]

    def format(self) -> str:
        where = f"frame {self.frame}, signal {self.signal}"
        if self.cycle is not None:
            where += f", cycle {self.cycle}"
        return f"{where}: got {self.got}, want {self.want}"


@dataclass
class LevelDiff:
    """Bit-exact comparison of one level against its golden reference."""

    spec: LevelSpec
    reference: str
    equal: bool
    n_frames: int
    mismatch_count: int = 0
    divergence: Optional[Divergence] = None
    error: Optional[str] = None

    def format(self) -> str:
        if self.error is not None:
            return f"[CRASH] {self.spec.key:24s} {self.error}"
        if self.equal:
            return (f"[OK  ] {self.spec.key:24s} == {self.reference} "
                    f"({self.n_frames} frames)")
        return (f"[FAIL] {self.spec.key:24s} != {self.reference} "
                f"({self.mismatch_count} frames differ; first at "
                f"{self.divergence.format()})")


def make_dut(params: SrcParams, spec: LevelSpec, builds: LevelBuilds):
    """Construct a fresh clocked DUT driver for *spec*."""
    level = spec.level
    if level in (Level.BEH_UNOPT, Level.BEH_OPT):
        sim = BehavioralSimulation(params,
                                   optimized=(level is Level.BEH_OPT),
                                   backend=spec.backend)
        return BehavioralDutDriver(sim, params), sim
    if level in (Level.RTL_UNOPT, Level.RTL_OPT, Level.VHDL_REF):
        sim = RtlSimulator(builds.module(level), backend=spec.backend)
        return RtlDutDriver(sim, params), sim
    if level in (Level.GATE_BEH, Level.GATE_RTL):
        sim = GateSimulator(builds.netlist(level), backend=spec.backend)
        return RtlDutDriver(sim, params), sim
    raise ValueError(f"{level} is not a clocked level")


def run_case_level(params: SrcParams, spec: LevelSpec, case: StimulusCase,
                   builds: LevelBuilds, coverage=None) -> LevelRun:
    """Execute one level over one case, recording per-output cycles."""
    run = LevelRun(spec)
    level = spec.level
    try:
        if not spec.is_clocked:
            schedule = make_schedule(params, case.mode, case.n_inputs,
                                     mode_changes=case.mode_changes)
            if level is Level.ALGORITHMIC:
                src = AlgorithmicSrc(params, mode=case.mode)
                run.outputs = src.process_schedule(schedule, case.inputs)
            else:
                run.outputs = run_tlm(
                    params, schedule, case.inputs,
                    refined=(level is Level.TLM_REFINED))
            return run
        schedule = make_schedule(params, case.mode, case.n_inputs,
                                 quantized=True,
                                 mode_changes=case.mode_changes)
        driver, sim = make_dut(params, spec, builds)
        ticks: List[int] = []
        handle = coverage.begin(spec, sim) if coverage is not None else None

        def on_cycle(tick, result):
            if result is not None:
                ticks.append(tick)
            if handle is not None:
                handle.sample()

        run.outputs = run_clocked(params, driver, schedule, case.inputs,
                                  on_cycle=on_cycle)
        run.ticks = ticks
        if handle is not None:
            coverage.end(handle)
    except Exception as exc:  # crash = caught divergence, never a pass
        run.error = f"{type(exc).__name__}: {exc}"
    return run


def golden_outputs(params: SrcParams, case: StimulusCase,
                   quantized: bool) -> List[Tuple[int, ...]]:
    """The golden algorithmic model over the case's schedule domain."""
    schedule = make_schedule(params, case.mode, case.n_inputs,
                             quantized=quantized,
                             mode_changes=case.mode_changes)
    src = AlgorithmicSrc(params, mode=case.mode)
    return src.process_schedule(schedule, case.inputs)


def diff_against_reference(reference: Sequence[Tuple[int, ...]],
                           reference_name: str, run: LevelRun) -> LevelDiff:
    """Bit-exact diff with first-divergence localisation."""
    if run.error is not None:
        return LevelDiff(run.spec, reference_name, equal=False,
                         n_frames=len(run.outputs), error=run.error)
    mismatches = 0
    first: Optional[Divergence] = None
    for i, (want, got) in enumerate(zip(reference, run.outputs)):
        want = tuple(want)
        got = tuple(got)
        if want != got:
            mismatches += 1
            if first is None:
                signal = "out_l" if want[0] != got[0] else "out_r"
                cycle = run.ticks[i] if run.ticks is not None else None
                first = Divergence(i, signal, cycle, got, want)
    if len(reference) != len(run.outputs) and first is None:
        frame = min(len(reference), len(run.outputs))
        cycle = None
        if run.ticks is not None and frame < len(run.ticks):
            cycle = run.ticks[frame]
        first = Divergence(frame, "length", cycle,
                           (len(run.outputs),), (len(reference),))
        mismatches += 1
    return LevelDiff(run.spec, reference_name,
                     equal=(first is None),
                     n_frames=len(run.outputs),
                     mismatch_count=mismatches, divergence=first)


@dataclass
class CaseReport:
    """All level diffs for one stimulus case."""

    case: StimulusCase
    diffs: List[LevelDiff] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(d.equal for d in self.diffs)

    @property
    def failures(self) -> List[LevelDiff]:
        return [d for d in self.diffs if not d.equal]

    def format(self) -> str:
        lines = [self.case.replay_hint()]
        lines += ["  " + d.format() for d in self.diffs]
        return "\n".join(lines)


def run_differential(params: SrcParams, specs: Sequence[LevelSpec],
                     case: StimulusCase, builds: LevelBuilds,
                     coverage=None) -> CaseReport:
    """Run every level of *specs* over *case* and diff against golden."""
    report = CaseReport(case)
    ref_exact: Optional[List[Tuple[int, ...]]] = None
    ref_quant: Optional[List[Tuple[int, ...]]] = None
    with span("verify.case", kind=case.kind, seed=case.seed,
              n_inputs=case.n_inputs):
        for spec in specs:
            if spec.level is Level.ALGORITHMIC and not spec.is_clocked:
                # the golden model itself: nothing to diff against
                continue
            if spec.is_clocked:
                if ref_quant is None:
                    ref_quant = golden_outputs(params, case,
                                               quantized=True)
                reference, ref_name = ref_quant, "golden(quantised)"
            else:
                if ref_exact is None:
                    ref_exact = golden_outputs(params, case,
                                               quantized=False)
                reference, ref_name = ref_exact, "golden(exact)"
            with span("verify.level", level=spec.key):
                run = run_case_level(params, spec, case, builds,
                                     coverage=coverage)
            report.diffs.append(
                diff_against_reference(reference, ref_name, run))
    return report
