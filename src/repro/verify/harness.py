"""The differential verification harness (``python -m repro verify``).

Orchestrates the pieces of :mod:`repro.verify`: generates a budgeted,
seeded batch of stimulus cases, runs every requested abstraction level
over every case through the lockstep differential runner, shrinks any
failure to a short counterexample, and aggregates input-value and
port-toggle coverage.

This is the standing correctness gate of the repository: any change to
the kernel, the RTL/gate simulators or the synthesis flow must keep
``python -m repro verify --seed 0 --budget small`` clean, and the
``--self-check`` mode proves the gate still has teeth by injecting a
netlist mutation that *must* be caught and shrunk.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..flow.refinement import Level
from ..obs.trace import span
from ..src_design.params import SMALL_PARAMS, SrcParams
from ..synth import synthesize
from .coverage import InputCoverage, ToggleCoverage
from .mutate import Mutation, iter_mutations
from .runner import (DEFAULT_LEVELS, CaseReport, LevelBuilds, LevelSpec,
                     diff_against_reference, golden_outputs,
                     parse_level_specs, run_case_level, run_differential)
from .shrink import ShrinkResult, shrink_case
from .stimulus import StimulusCase, generate_cases


@dataclass(frozen=True)
class Budget:
    """How much work one verification run may spend."""

    name: str
    n_cases: int
    n_inputs: int
    shrink_runs: int
    mutation_tries: int


BUDGETS: Dict[str, Budget] = {
    "smoke": Budget("smoke", n_cases=2, n_inputs=12, shrink_runs=40,
                    mutation_tries=4),
    "small": Budget("small", n_cases=4, n_inputs=24, shrink_runs=80,
                    mutation_tries=6),
    "medium": Budget("medium", n_cases=8, n_inputs=64, shrink_runs=150,
                     mutation_tries=10),
    "large": Budget("large", n_cases=18, n_inputs=160, shrink_runs=300,
                    mutation_tries=16),
}


@dataclass
class VerifyConfig:
    """Full configuration of one harness run."""

    params: SrcParams = SMALL_PARAMS
    levels: str = DEFAULT_LEVELS
    backend: str = "both"
    seed: int = 0
    budget: str = "small"
    #: worker processes for the case loop (1 = in-process, sequential)
    jobs: int = 1

    def specs(self) -> List[LevelSpec]:
        return parse_level_specs(self.levels, self.backend)

    def budget_obj(self) -> Budget:
        try:
            return BUDGETS[self.budget]
        except KeyError:
            raise ValueError(
                f"unknown budget {self.budget!r} "
                f"(known: {', '.join(BUDGETS)})"
            )


@dataclass
class Failure:
    """One diverging (case, level) pair with its shrunk counterexample."""

    case_report: CaseReport
    shrink: Optional[ShrinkResult] = None

    def format(self) -> str:
        lines = [self.case_report.format()]
        if self.shrink is not None:
            lines.append("  " + self.shrink.format())
            evidence = self.shrink.evidence
            if hasattr(evidence, "format"):
                lines.append("  shrunk divergence: " + evidence.format())
        return "\n".join(lines)


@dataclass
class VerifyReport:
    """Outcome of a full harness run."""

    config: VerifyConfig
    case_reports: List[CaseReport] = field(default_factory=list)
    failures: List[Failure] = field(default_factory=list)
    input_coverage: Optional[InputCoverage] = None
    toggle_coverage: Optional[ToggleCoverage] = None

    @property
    def passed(self) -> bool:
        return not self.failures

    def format(self) -> str:
        budget = self.config.budget_obj()
        specs = self.config.specs()
        lines = [
            "Differential verification "
            f"(seed={self.config.seed}, budget={budget.name}: "
            f"{budget.n_cases} cases x {budget.n_inputs} frames)",
            "levels: " + ", ".join(s.key for s in specs),
        ]
        for report in self.case_reports:
            lines.append(report.format())
        if self.input_coverage is not None:
            lines.append(self.input_coverage.format())
        if self.toggle_coverage is not None:
            lines.append(self.toggle_coverage.format())
        if self.passed:
            lines.append("PASS: all levels bit-accurate on every case")
        else:
            lines.append(f"FAIL: {len(self.failures)} diverging case(s)")
            for failure in self.failures:
                lines.append(failure.format())
        return "\n".join(lines)


def _shrink_failure(config: VerifyConfig, report: CaseReport,
                    builds: LevelBuilds, budget: Budget
                    ) -> Optional[ShrinkResult]:
    """Minimise the first diverging level of a failing case."""
    first = report.failures[0]
    spec = first.spec
    params = config.params

    def predicate(inputs, mode_changes):
        candidate = report.case.with_inputs(inputs, mode_changes)
        reference = golden_outputs(params, candidate,
                                   quantized=spec.is_clocked)
        run = run_case_level(params, spec, candidate, builds)
        diff = diff_against_reference(reference, "golden", run)
        return None if diff.equal else diff

    return shrink_case(report.case, predicate, first,
                       max_runs=budget.shrink_runs)


#: per-process verification state for the parallel case loop
_WORKER: Dict[str, object] = {}


def _init_verify_worker(params: SrcParams, levels: str,
                        backend: str) -> None:
    """(Re)build per-process harness state (see fi.campaign pattern:
    pure function of its arguments, so forked workers skip the rebuild
    and spawned workers reconstruct identical state)."""
    key = (params, levels, backend)
    if _WORKER.get("key") == key:
        return
    _WORKER.clear()
    _WORKER["key"] = key
    _WORKER["params"] = params
    _WORKER["specs"] = parse_level_specs(levels, backend)
    _WORKER["builds"] = LevelBuilds(params)


def _verify_case_task(case: StimulusCase):
    """Pool task: one case through the differential runner.

    Returns the case report, the worker's raw toggle counts and its
    compile-cache deltas -- everything the parent needs to keep
    coverage and cache statistics identical to a sequential run.
    """
    from ..compile_cache import counters_delta, counters_snapshot

    before = counters_snapshot()
    coverage = ToggleCoverage()
    case_report = run_differential(
        _WORKER["params"], _WORKER["specs"], case, _WORKER["builds"],
        coverage=coverage)
    after = counters_snapshot()
    return (case_report, coverage.counts, counters_delta(before, after))


def run_verify(config: VerifyConfig) -> VerifyReport:
    """Run the full differential harness per *config*.

    With ``jobs > 1`` the (independent, seeded) cases fan out across
    the fault-injection subsystem's worker pool; case order, coverage
    and compile-cache statistics are preserved, and any failure is
    shrunk in the parent, so reports are identical for every job count.
    """
    budget = config.budget_obj()
    specs = config.specs()
    params = config.params
    builds = LevelBuilds(params)
    report = VerifyReport(config)
    report.input_coverage = InputCoverage(params.data_width)
    report.toggle_coverage = ToggleCoverage()
    with span("verify.harness", levels=config.levels,
              backend=config.backend, jobs=config.jobs):
        cases = generate_cases(params, config.seed, budget.n_cases,
                               budget.n_inputs)
        if config.jobs > 1 and len(cases) > 1:
            from ..compile_cache import absorb_deltas
            from ..fi.campaign import parallel_map

            results = parallel_map(
                _verify_case_task, cases, config.jobs,
                initializer=_init_verify_worker,
                initargs=(params, config.levels, config.backend))
            absorb_deltas([r[2] for r in results])
            for case, (case_report, toggle_counts, _) in zip(cases,
                                                             results):
                report.input_coverage.record_case(case.inputs)
                report.toggle_coverage.absorb(toggle_counts)
                report.case_reports.append(case_report)
                if not case_report.passed:
                    shrink = _shrink_failure(config, case_report, builds,
                                             budget)
                    report.failures.append(Failure(case_report, shrink))
            return report
        for case in cases:
            report.input_coverage.record_case(case.inputs)
            case_report = run_differential(params, specs, case, builds,
                                           coverage=report.toggle_coverage)
            report.case_reports.append(case_report)
            if not case_report.passed:
                shrink = _shrink_failure(config, case_report, builds,
                                         budget)
                report.failures.append(Failure(case_report, shrink))
    return report


# ----------------------------------------------------------------------
# self-check: inject a netlist mutation, the harness must catch it
# ----------------------------------------------------------------------

@dataclass
class SelfCheckReport:
    """Outcome of the mutation self-check."""

    config: VerifyConfig
    mutation: Optional[Mutation] = None
    mutations_tried: int = 0
    failure: Optional[Failure] = None
    caught: bool = False

    def format(self) -> str:
        lines = [f"Self-check (seed={self.config.seed}, "
                 f"budget={self.config.budget}, "
                 f"backend={self.config.backend}):"]
        if not self.caught:
            lines.append(
                f"FAIL: no divergence detected across "
                f"{self.mutations_tried} injected mutation(s) -- the "
                "harness would miss real bugs")
            return "\n".join(lines)
        lines.append(f"injected: {self.mutation.format()} "
                     f"(mutation {self.mutations_tried})")
        lines.append(self.failure.format())
        lines.append("PASS: mutation caught and shrunk")
        return "\n".join(lines)


def run_self_check(config: VerifyConfig,
                   level: Level = Level.GATE_RTL) -> SelfCheckReport:
    """Inject seeded netlist mutations until the harness catches one.

    Uses a single gate-level spec (the mutation target); each mutated
    netlist is fuzzed with the configured budget, and the first caught
    divergence is shrunk to a short counterexample with full
    first-divergence localisation.
    """
    budget = config.budget_obj()
    params = config.params
    backend = config.backend if config.backend != "both" else "compiled"
    spec = LevelSpec(level, backend)
    report = SelfCheckReport(config)
    cases = generate_cases(params, config.seed, budget.n_cases,
                           budget.n_inputs)
    baseline = LevelBuilds(params)

    def builder():
        return synthesize(baseline.module(level))

    for netlist, mutation in iter_mutations(
            builder, config.seed, max_mutations=budget.mutation_tries):
        report.mutations_tried += 1
        builds = LevelBuilds(params, netlist_overrides={level: netlist})
        for case in cases:
            case_report = run_differential(params, [spec], case, builds)
            if case_report.passed:
                continue
            report.mutation = mutation
            shrink = _shrink_failure(
                replace(config, backend=backend), case_report, builds,
                budget)
            report.failure = Failure(case_report, shrink)
            report.caught = True
            return report
    return report
