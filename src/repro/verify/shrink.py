"""Counterexample minimisation for failing stimulus cases.

Given a failing :class:`~repro.verify.stimulus.StimulusCase` and a
predicate that re-runs the differential check over candidate inputs,
the shrinker produces a short, human-debuggable counterexample:

1. drop the mode changes if the failure survives without them;
2. binary-search the shortest failing *prefix* (outputs depend only on
   earlier inputs, so truncating after the divergence is always sound
   to try first);
3. delta-debugging style chunk removal (halving chunk sizes);
4. value simplification: replace frames with ``(0, 0)`` where the
   failure persists.

The predicate is called with ``(inputs, mode_changes)`` and returns the
failure evidence (any truthy object, e.g. a
:class:`~repro.verify.runner.LevelDiff`) or ``None`` when the candidate
passes.  Every candidate evaluation costs a full simulation, so the
total number of predicate calls is budgeted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from .stimulus import StimulusCase

Frames = Tuple[Tuple[int, int], ...]
Predicate = Callable[[Frames, Tuple[Tuple[int, int], ...]], Optional[object]]


@dataclass
class ShrinkResult:
    """The minimised counterexample and how it was obtained."""

    case: StimulusCase          # shrunk case (inputs replaced)
    evidence: object            # failure evidence for the shrunk case
    original_frames: int
    runs_used: int

    @property
    def n_frames(self) -> int:
        return self.case.n_inputs

    def format(self) -> str:
        return (f"shrunk counterexample: {self.original_frames} -> "
                f"{self.n_frames} frames in {self.runs_used} runs; "
                f"inputs={list(self.case.inputs)}")


class _Budgeted:
    """Wraps the predicate with a run counter and a hard budget."""

    def __init__(self, predicate: Predicate, max_runs: int):
        self.predicate = predicate
        self.max_runs = max_runs
        self.runs = 0

    def exhausted(self) -> bool:
        return self.runs >= self.max_runs

    def __call__(self, inputs: Sequence[Tuple[int, int]],
                 mode_changes: Tuple[Tuple[int, int], ...]):
        if self.exhausted():
            return None
        self.runs += 1
        try:
            return self.predicate(tuple(inputs), mode_changes)
        except ValueError:
            # e.g. a mode change that no longer fits the shorter run:
            # treat the candidate as invalid, keep the previous witness
            return None


def shrink_case(case: StimulusCase, predicate: Predicate,
                evidence: object, max_runs: int = 150) -> ShrinkResult:
    """Minimise *case* while *predicate* keeps failing.

    *evidence* is the failure object of the original case (kept when no
    smaller candidate fails within the run budget).
    """
    check = _Budgeted(predicate, max_runs)
    best: Frames = tuple(tuple(f) for f in case.inputs)
    best_changes = case.mode_changes
    best_evidence = evidence

    # 1. drop mode changes
    if best_changes:
        got = check(best, ())
        if got is not None:
            best_changes = ()
            best_evidence = got

    # 2. shortest failing prefix (binary search on the prefix length)
    lo, hi = 1, len(best)          # invariant: prefix of length hi fails
    while lo < hi and not check.exhausted():
        mid = (lo + hi) // 2
        got = check(best[:mid], best_changes)
        if got is not None:
            hi = mid
            best_evidence = got
        else:
            lo = mid + 1
    best = best[:hi]

    # 3. chunk removal (ddmin-style, halving chunk sizes)
    chunk = max(1, len(best) // 2)
    while chunk >= 1 and not check.exhausted():
        start = 0
        removed_any = False
        while start < len(best) and not check.exhausted():
            candidate = best[:start] + best[start + chunk:]
            if candidate:
                got = check(candidate, best_changes)
                if got is not None:
                    best = candidate
                    best_evidence = got
                    removed_any = True
                    continue  # retry the same start on the shorter list
            start += chunk
        if chunk == 1 and not removed_any:
            break
        chunk //= 2

    # 4. value simplification: zero out frames where possible
    index = 0
    while index < len(best) and not check.exhausted():
        if best[index] != (0, 0):
            candidate = best[:index] + ((0, 0),) + best[index + 1:]
            got = check(candidate, best_changes)
            if got is not None:
                best = candidate
                best_evidence = got
        index += 1

    return ShrinkResult(
        case=case.with_inputs(best, best_changes),
        evidence=best_evidence,
        original_frames=case.n_inputs,
        runs_used=check.runs,
    )
