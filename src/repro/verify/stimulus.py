"""Seeded, reproducible stimulus cases for differential verification.

Every case is fully determined by ``(master seed, case index, budget)``:
the generator derives one child seed per case from the master seed and
feeds it to the (already seeded) generators in :mod:`repro.dsp.stimulus`.
A failure report therefore only needs to print the master seed and the
case name for an exact replay.

Stimulus classes (cycled round-robin):

* ``random``     -- uniform random frames over the full signed range;
* ``corner``     -- full-scale swings, DC stretches, random bursts (the
  class that historically exposed the golden-model buffer bug);
* ``sweep``      -- a swept tone crossing every polyphase branch;
* ``burst``      -- bursts separated by silent gaps (backpressure-like
  buffer drain/refill);
* ``step``       -- a full-scale step (worst-case transient);
* ``impulse``    -- a single impulse (the filter's raw response).

Cases with enough samples also carry a mode change placed in a
guaranteed-idle gap, exercising the reconfiguration flush at every
level.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..dsp.stimulus import (burst_samples, corner_case_samples,
                            impulse_samples, random_samples, sine_samples,
                            step_samples, swept_tone_samples)
from ..src_design.params import SrcParams
from ..src_design.schedule import make_schedule

#: stimulus class names, in generation (round-robin) order
STIMULUS_KINDS = ("random", "corner", "sweep", "burst", "step", "impulse")

#: minimum run length before a mode change can be placed in an idle gap
MODE_CHANGE_MIN_INPUTS = 96


@dataclass(frozen=True)
class StimulusCase:
    """One reproducible stimulus: stereo frames plus schedule knobs."""

    name: str
    kind: str
    seed: int
    inputs: Tuple[Tuple[int, int], ...]
    mode: int = 0
    mode_changes: Tuple[Tuple[int, int], ...] = ()

    @property
    def n_inputs(self) -> int:
        return len(self.inputs)

    def replay_hint(self) -> str:
        return (f"case {self.name!r} (kind={self.kind}, seed={self.seed}, "
                f"{self.n_inputs} frames, mode_changes={self.mode_changes})")

    def with_inputs(self, inputs: Sequence[Tuple[int, int]],
                    mode_changes: Sequence[Tuple[int, int]] = None
                    ) -> "StimulusCase":
        """A copy with different frames (used by the shrinker)."""
        changes = self.mode_changes if mode_changes is None \
            else tuple(mode_changes)
        return StimulusCase(self.name, self.kind, self.seed,
                            tuple(tuple(f) for f in inputs),
                            self.mode, changes)


def _frames(kind: str, params: SrcParams, n: int, seed: int,
            mode: int) -> List[Tuple[int, int]]:
    """Build *n* stereo frames of the given stimulus class."""
    dw = params.data_width
    f_in = params.modes[mode].f_in
    if kind == "random":
        left = random_samples(n, dw, seed=seed)
        right = random_samples(n, dw, seed=seed + 1)
    elif kind == "corner":
        left = corner_case_samples(n, dw, seed=seed)
        right = corner_case_samples(n, dw, seed=seed + 1)
    elif kind == "sweep":
        left = swept_tone_samples(n, 100.0, f_in * 0.45, f_in, dw)
        right = swept_tone_samples(n, f_in * 0.45, 100.0, f_in, dw)
    elif kind == "burst":
        left = burst_samples(n, dw, seed=seed)
        right = burst_samples(n, dw, seed=seed + 1)
    elif kind == "step":
        left = step_samples(n, dw)
        right = step_samples(n, dw, low_frac=0.5, high_frac=-0.5)
    elif kind == "impulse":
        left = impulse_samples(n, dw, at=min(2, n - 1))
        right = impulse_samples(n, dw, at=min(5, n - 1), amplitude=-0.9)
    else:
        raise ValueError(f"unknown stimulus kind {kind!r}")
    return list(zip(left, right))


def _placeable(params: SrcParams, n_inputs: int, mode: int,
               mode_changes: Sequence[Tuple[int, int]]) -> bool:
    """True when a schedule with these mode changes can be built."""
    try:
        make_schedule(params, mode, n_inputs, quantized=True,
                      mode_changes=mode_changes)
    except ValueError:
        return False
    return True


def generate_cases(params: SrcParams, seed: int, n_cases: int,
                   n_inputs: int,
                   kinds: Sequence[str] = STIMULUS_KINDS
                   ) -> List[StimulusCase]:
    """Derive *n_cases* reproducible cases from the master *seed*."""
    master = random.Random(seed)
    cases: List[StimulusCase] = []
    for index in range(n_cases):
        kind = kinds[index % len(kinds)]
        child_seed = master.randrange(1 << 30)
        mode = index % len(params.modes)
        frames = _frames(kind, params, n_inputs, child_seed, mode)
        mode_changes: Tuple[Tuple[int, int], ...] = ()
        if (len(params.modes) > 1 and n_inputs >= MODE_CHANGE_MIN_INPUTS):
            change = (n_inputs // 2, (mode + 1) % len(params.modes))
            if _placeable(params, n_inputs, mode, (change,)):
                mode_changes = (change,)
        cases.append(StimulusCase(
            name=f"s{seed}-{index:02d}-{kind}",
            kind=kind,
            seed=child_seed,
            inputs=tuple(frames),
            mode=mode,
            mode_changes=mode_changes,
        ))
    return cases
