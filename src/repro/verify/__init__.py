"""Differential verification: seeded fuzzing, lockstep equivalence,
shrinking and coverage across every abstraction level of the flow."""

from .coverage import InputCoverage, ToggleCoverage
from .harness import (BUDGETS, Budget, Failure, SelfCheckReport,
                      VerifyConfig, VerifyReport, run_self_check,
                      run_verify)
from .mutate import (GATE_SWAPS, Mutation, apply_mutation, iter_mutations,
                     mutation_candidates)
from .runner import (BACKEND_LEVELS, DEFAULT_LEVELS, LEVEL_ALIASES,
                     CaseReport, Divergence, LevelBuilds, LevelDiff,
                     LevelRun, LevelSpec, diff_against_reference,
                     golden_outputs, parse_level_specs, run_case_level,
                     run_differential)
from .shrink import ShrinkResult, shrink_case
from .stimulus import (MODE_CHANGE_MIN_INPUTS, STIMULUS_KINDS,
                       StimulusCase, generate_cases)

__all__ = [
    "BACKEND_LEVELS", "BUDGETS", "Budget", "CaseReport", "DEFAULT_LEVELS",
    "Divergence", "Failure", "GATE_SWAPS", "InputCoverage",
    "LEVEL_ALIASES", "LevelBuilds", "LevelDiff", "LevelRun", "LevelSpec",
    "MODE_CHANGE_MIN_INPUTS", "Mutation", "STIMULUS_KINDS",
    "SelfCheckReport", "ShrinkResult", "StimulusCase", "ToggleCoverage",
    "VerifyConfig", "VerifyReport", "apply_mutation",
    "diff_against_reference", "generate_cases", "golden_outputs",
    "iter_mutations", "mutation_candidates", "parse_level_specs",
    "run_case_level", "run_differential", "run_self_check", "run_verify",
    "shrink_case",
]
