"""Coverage metrics for the differential verification harness.

Two complementary views of "did the fuzz run actually exercise the
design":

* :class:`InputCoverage` -- value-range buckets over the stimulus
  frames (uniform buckets across the signed range plus the three
  corner values min/zero/max per channel);
* :class:`ToggleCoverage` -- per-port-bit 0->1/1->0 activity of the
  clocked DUTs, harvested from :class:`~repro.gatesim.trace.GateVcdTracer`
  samples for gate-level simulators and from integer port sampling for
  RTL simulators.

Both aggregate across all cases of a run and serialise to plain dicts
so :func:`repro.flow.artifacts.write_verify_artifacts` can emit them as
JSON next to the other flow artefacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..datatypes.integers import max_signed, min_signed
from ..gatesim import GateSimulator, GateVcdTracer
from ..rtl import RtlSimulator

#: uniform value buckets per channel (plus min/zero/max specials)
N_BUCKETS = 16


class InputCoverage:
    """Value-range bucket coverage of the stereo input stimulus."""

    def __init__(self, data_width: int, n_buckets: int = N_BUCKETS):
        self.data_width = data_width
        self.n_buckets = n_buckets
        self.lo = min_signed(data_width)
        self.hi = max_signed(data_width)
        self._span = self.hi - self.lo + 1
        # per channel: bucket hit counts + special-value hits
        self.buckets: List[List[int]] = [[0] * n_buckets, [0] * n_buckets]
        self.specials: List[Dict[str, int]] = [
            {"min": 0, "zero": 0, "max": 0},
            {"min": 0, "zero": 0, "max": 0},
        ]
        self.n_frames = 0

    def record(self, frame: Sequence[int]) -> None:
        self.n_frames += 1
        for ch in (0, 1):
            value = frame[ch]
            index = (value - self.lo) * self.n_buckets // self._span
            self.buckets[ch][min(max(index, 0), self.n_buckets - 1)] += 1
            if value == self.lo:
                self.specials[ch]["min"] += 1
            elif value == self.hi:
                self.specials[ch]["max"] += 1
            elif value == 0:
                self.specials[ch]["zero"] += 1

    def record_case(self, inputs: Sequence[Sequence[int]]) -> None:
        for frame in inputs:
            self.record(frame)

    @property
    def fraction(self) -> float:
        """Fraction of (bucket + special) bins hit at least once."""
        total = hit = 0
        for ch in (0, 1):
            for count in self.buckets[ch]:
                total += 1
                hit += count > 0
            for count in self.specials[ch].values():
                total += 1
                hit += count > 0
        return hit / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": "input_value_buckets",
            "data_width": self.data_width,
            "n_buckets": self.n_buckets,
            "n_frames": self.n_frames,
            "fraction": self.fraction,
            "channels": [
                {"buckets": list(self.buckets[ch]),
                 "specials": dict(self.specials[ch])}
                for ch in (0, 1)
            ],
        }

    def format(self) -> str:
        return (f"input coverage: {self.fraction * 100:5.1f}% of value "
                f"bins hit over {self.n_frames} frames")


class _GateHandle:
    """Per-run toggle sampling of a gate-level DUT via the VCD tracer."""

    def __init__(self, key: str, sim: GateSimulator):
        self.key = key
        self.tracer = GateVcdTracer(sim)

    def sample(self) -> None:
        self.tracer.sample()

    def counts(self) -> Dict[str, List[Tuple[int, int]]]:
        return self.tracer.toggle_counts()


class _RtlHandle:
    """Per-run toggle sampling of an RTL DUT via integer port reads."""

    def __init__(self, key: str, sim: RtlSimulator):
        self.key = key
        self.sim = sim
        self.widths = sim.port_widths()
        self._last: Dict[str, int] = {}
        self._counts: Dict[str, List[Tuple[int, int]]] = {
            name: [(0, 0)] * width for name, width in self.widths.items()
        }
        self.sample()

    def sample(self) -> None:
        for name, width in self.widths.items():
            value = self.sim.get(name)
            last = self._last.get(name)
            if last is not None and last != value:
                per_bit = self._counts[name]
                changed = last ^ value
                for bit in range(width):
                    if changed >> bit & 1:
                        r, f = per_bit[bit]
                        if value >> bit & 1:
                            per_bit[bit] = (r + 1, f)
                        else:
                            per_bit[bit] = (r, f + 1)
            self._last[name] = value

    def counts(self) -> Dict[str, List[Tuple[int, int]]]:
        return self._counts


class ToggleCoverage:
    """Aggregated per-port-bit toggle activity across a whole run.

    Implements the ``begin(spec, sim)`` / ``handle.sample()`` /
    ``end(handle)`` protocol the runner drives once per clock cycle.
    Unsupported DUTs (the behavioural FSM interpreter has no port-level
    bit view) simply return no handle and are skipped.
    """

    def __init__(self):
        #: spec key -> port -> per-bit (rises, falls)
        self.counts: Dict[str, Dict[str, List[Tuple[int, int]]]] = {}

    def begin(self, spec, sim):
        if isinstance(sim, RtlSimulator) or hasattr(sim, "port_widths"):
            # the vectorized RTL simulator is not an RtlSimulator
            # subclass but shares the integer port-read surface
            return _RtlHandle(spec.key, sim)
        if hasattr(sim, "netlist") and hasattr(sim, "get_logic"):
            return _GateHandle(spec.key, sim)
        return None

    def end(self, handle) -> None:
        self.absorb({handle.key: handle.counts()})

    def absorb(self, counts: Dict[str, Dict[str, List[Tuple[int, int]]]]
               ) -> None:
        """Merge another run's raw counts into this aggregate.

        The parallel verification path runs each case in a worker
        process and ships the worker's ``counts`` dict back; absorbing
        them here keeps cross-process coverage identical to a
        sequential run.
        """
        for key, ports in counts.items():
            merged = self.counts.setdefault(key, {})
            for port, per_bit in ports.items():
                if port not in merged:
                    merged[port] = [tuple(rf) for rf in per_bit]
                else:
                    merged[port] = [
                        (r0 + r1, f0 + f1)
                        for (r0, f0), (r1, f1) in zip(merged[port],
                                                      per_bit)
                    ]

    def fraction(self, key: Optional[str] = None) -> float:
        """Fraction of port bits that both rose and fell at least once."""
        keys = [key] if key is not None else list(self.counts)
        total = hit = 0
        for k in keys:
            for per_bit in self.counts.get(k, {}).values():
                for rises, falls in per_bit:
                    total += 1
                    hit += rises > 0 and falls > 0
        return hit / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": "port_bit_toggles",
            "fraction": self.fraction(),
            "levels": {
                key: {
                    "fraction": self.fraction(key),
                    "ports": {
                        port: [[r, f] for r, f in per_bit]
                        for port, per_bit in ports.items()
                    },
                }
                for key, ports in self.counts.items()
            },
        }

    def format(self) -> str:
        if not self.counts:
            return "toggle coverage: (no clocked port-level DUTs sampled)"
        lines = ["toggle coverage (port bits toggled both ways):"]
        for key in sorted(self.counts):
            lines.append(f"  {key:24s} {self.fraction(key) * 100:5.1f}%")
        return "\n".join(lines)
