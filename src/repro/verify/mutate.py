"""Deliberate netlist mutations for the harness self-check.

A verification harness that never sees a real bug is unfalsifiable, so
the self-check injects one: a seeded, single-cell gate substitution
into a freshly synthesised netlist.  The harness must then catch the
divergence against the golden model and shrink it to a short
counterexample -- the same discipline as DAVOS-style fault injection,
used here to prove the *tooling* works rather than to grade the design.

The substitution table is **derived from the cell library** through
:func:`repro.fi.targets.derive_gate_swaps` -- the same
target-enumeration module the fault-injection campaign samples from --
so any combinational cell with a pin-compatible sibling joins the
mutation space automatically (the historic hand-written table only knew
2-input gates and INV/BUF).  Mutations keep pin names and counts
identical, so the mutated netlist still validates, simulates on both
backends, and hashes differently in the compile cache (the structural
hash covers cell types).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..fi.targets import derive_gate_swaps
from ..synth.library import DEFAULT_LIBRARY
from ..synth.netlist import Netlist

#: pin-compatible substitutions per cell type, derived from the library
#: (cell name -> tuple of alternative cell names)
GATE_SWAPS: Dict[str, Tuple[str, ...]] = derive_gate_swaps(DEFAULT_LIBRARY)


@dataclass(frozen=True)
class Mutation:
    """One applied netlist mutation."""

    cell_name: str
    original_type: str
    mutated_type: str

    def format(self) -> str:
        return (f"cell {self.cell_name}: "
                f"{self.original_type} -> {self.mutated_type}")


def mutation_candidates(netlist: Netlist) -> List[str]:
    """Names of cells eligible for a pin-compatible substitution."""
    swaps = derive_gate_swaps(netlist.library)
    return [cell.name for cell in netlist.cells
            if cell.cell_type in swaps]


def apply_mutation(netlist: Netlist, cell_name: str,
                   new_type: Optional[str] = None) -> Mutation:
    """Swap one cell's type in place; returns the mutation record.

    *new_type* picks a specific substitution; by default the first
    pin-compatible alternative from the library-derived table is used
    (deterministic, so seeded self-check runs replay).
    """
    swaps = derive_gate_swaps(netlist.library)
    for cell in netlist.cells:
        if cell.name == cell_name:
            alternatives = swaps.get(cell.cell_type, ())
            if not alternatives:
                raise ValueError(
                    f"cell {cell_name!r} of type {cell.cell_type!r} "
                    "has no pin-compatible substitution"
                )
            if new_type is None:
                new_type = alternatives[0]
            elif new_type not in alternatives:
                raise ValueError(
                    f"{new_type!r} is not pin-compatible with "
                    f"{cell.cell_type!r} (alternatives: "
                    f"{', '.join(alternatives)})"
                )
            original = cell.cell_type
            cell.cell_type = new_type
            netlist.validate()
            return Mutation(cell_name, original, cell.cell_type)
    raise ValueError(f"no cell named {cell_name!r}")


def iter_mutations(netlist_builder, seed: int,
                   max_mutations: Optional[int] = None
                   ) -> Iterator:
    """Yield ``(netlist, Mutation)`` pairs in a seeded random order.

    *netlist_builder* must return a **fresh** netlist per call (each
    yielded netlist carries exactly one mutation).  Iterating tries
    different cells until one mutation is observably wrong -- some
    mutations are masked (e.g. inside the scan chain or on a don't-care
    cone) and the self-check simply moves on to the next.  The
    substituted type is drawn from the same seeded stream, so cells
    with several alternatives explore them across runs of the
    iterator's consumer.
    """
    names = mutation_candidates(netlist_builder())
    if not names:
        return
    rng = random.Random(seed)
    rng.shuffle(names)
    if max_mutations is not None:
        names = names[:max_mutations]
    for name in names:
        netlist = netlist_builder()
        swaps = derive_gate_swaps(netlist.library)
        cell_type = next(c.cell_type for c in netlist.cells
                         if c.name == name)
        new_type = rng.choice(swaps[cell_type])
        yield netlist, apply_mutation(netlist, name, new_type)
