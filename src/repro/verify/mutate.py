"""Deliberate netlist mutations for the harness self-check.

A verification harness that never sees a real bug is unfalsifiable, so
the self-check injects one: a seeded, single-cell gate substitution
(AND<->OR, NAND<->NOR, XOR<->XNOR, INV<->BUF) into a freshly
synthesised netlist.  The harness must then catch the divergence
against the golden model and shrink it to a short counterexample --
the same discipline as DAVOS-style fault injection, used here to prove
the *tooling* works rather than to grade the design.

Mutations keep pin names and counts identical, so the mutated netlist
still validates, simulates on both backends, and hashes differently in
the compile cache (the structural hash covers cell types).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..synth.netlist import Netlist

#: cell-type substitutions that preserve the pin interface
GATE_SWAPS = {
    "AND2": "OR2", "OR2": "AND2",
    "NAND2": "NOR2", "NOR2": "NAND2",
    "XOR2": "XNOR2", "XNOR2": "XOR2",
    "INV": "BUF", "BUF": "INV",
}


@dataclass(frozen=True)
class Mutation:
    """One applied netlist mutation."""

    cell_name: str
    original_type: str
    mutated_type: str

    def format(self) -> str:
        return (f"cell {self.cell_name}: "
                f"{self.original_type} -> {self.mutated_type}")


def mutation_candidates(netlist: Netlist) -> List[str]:
    """Names of cells eligible for a pin-compatible substitution."""
    return [cell.name for cell in netlist.cells
            if cell.cell_type in GATE_SWAPS]


def apply_mutation(netlist: Netlist, cell_name: str) -> Mutation:
    """Swap one cell's type in place; returns the mutation record."""
    for cell in netlist.cells:
        if cell.name == cell_name:
            if cell.cell_type not in GATE_SWAPS:
                raise ValueError(
                    f"cell {cell_name!r} of type {cell.cell_type!r} "
                    "has no pin-compatible substitution"
                )
            original = cell.cell_type
            cell.cell_type = GATE_SWAPS[original]
            netlist.validate()
            return Mutation(cell_name, original, cell.cell_type)
    raise ValueError(f"no cell named {cell_name!r}")


def iter_mutations(netlist_builder, seed: int,
                   max_mutations: Optional[int] = None
                   ) -> Iterator:
    """Yield ``(netlist, Mutation)`` pairs in a seeded random order.

    *netlist_builder* must return a **fresh** netlist per call (each
    yielded netlist carries exactly one mutation).  Iterating tries
    different cells until one mutation is observably wrong -- some
    mutations are masked (e.g. inside the scan chain or on a don't-care
    cone) and the self-check simply moves on to the next.
    """
    names = mutation_candidates(netlist_builder())
    if not names:
        return
    rng = random.Random(seed)
    rng.shuffle(names)
    if max_mutations is not None:
        names = names[:max_mutations]
    for name in names:
        netlist = netlist_builder()
        yield netlist, apply_mutation(netlist, name)
