"""Channel interfaces of the SRC hierarchical channel (paper Figure 5).

The SRC exposes three interfaces to its environment:

* :class:`SrcCtrlIF` -- the configuration port for the operation mode;
* :class:`SampleWriteIF` -- the producer-side sample stream;
* :class:`SampleReadIF` -- the consumer-side sample stream.

Blocking interface methods are generator methods (they ``wait()``
internally), so callers invoke them with ``yield from`` -- the Python
equivalent of SystemC interface method calls that may suspend.
"""

from __future__ import annotations

import abc
from typing import Sequence, Tuple


class SrcCtrlIF(abc.ABC):
    """Configuration interface: selects the conversion mode."""

    @abc.abstractmethod
    def set_mode(self, mode: int) -> None:
        """Switch to operation *mode*; flushes the converter state."""

    @abc.abstractmethod
    def get_mode(self) -> int:
        """Return the active operation mode."""


class SampleWriteIF(abc.ABC):
    """Producer interface: push one input frame per call (blocking IMC)."""

    @abc.abstractmethod
    def write_sample(self, frame: Sequence[int]):
        """Blocking write of one frame; use as ``yield from``."""


class SampleReadIF(abc.ABC):
    """Consumer interface: pull one output frame per call (blocking IMC)."""

    @abc.abstractmethod
    def read_sample(self):
        """Blocking read of one frame; use as ``yield from``; returns it."""
