"""Hand-written RTL SRC (paper Sections 4.5 / 4.6).

The RTL model was refined from the optimised behavioural description:
"fine-tuning of the model's scheduling, allocation of registers for the
variables, creating an FSM that realises the scheduling.  The data-path
was not modelled explicitly -- it was described implicitly by the state
transitions of the FSM and then optimised by the Design Compiler."

The hand schedule is tighter than the behavioural one: one MAC per cycle
alternating channels (a single shared multiplier), a two-cycle prologue
and a one-cycle rounding epilogue.  The *unoptimised* RTL keeps the
conservative-refinement leftovers -- a duplicated channel address
register, a phase copy, and double-buffered rounded outputs with an
extra DONE state; the *optimised* RTL eliminates them, reusing the MAC
accumulators as output registers (paper: "the remaining optimisation
potential results from register usage").

Both variants carry the golden-model bug: the fill==0 corner issues the
invalid-address prefetch before returning silence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..rtl.expr import Case, Cat, Const, Expr, Ext, Mux, Ref, Slice, SMul, Sub
from ..rtl.ir import RtlModule
from .behavioral import round_saturate_expr
from .coefficients import build_rom
from .io_interfaces import FrontEnd, FrontEndOptions
from .params import SrcParams

# FSM state encoding
S_IDLE = 0
S_TAKE = 1
S_BUG = 2
S_MAC = 3
S_ROUND = 4
S_DONE = 5  # unoptimised variant only


@dataclass
class RtlDesign:
    """A built RTL SRC."""

    module: RtlModule
    optimized: bool
    flop_estimate: int
    #: net names of the parallel output stream (for wrapper blocks)
    out_l_net: str = "out_l_w"
    out_r_net: str = "out_r_w"
    out_valid_net: str = "out_valid_r"


def build_rtl_design(params: SrcParams, optimized: bool,
                     name: Optional[str] = None,
                     module: Optional[RtlModule] = None,
                     stream_inputs=None) -> RtlDesign:
    """Build the hand-written RTL SRC as one flat RTL module.

    *module* lets a wrapper emit the design into an existing module
    (e.g. together with serial I/O blocks); *stream_inputs* replaces the
    parallel stream ports by existing nets (see
    :class:`~repro.src_design.io_interfaces.FrontEnd`).
    """
    p = params
    dw = p.data_width
    cw = p.coef_width
    ab = p.addr_bits
    fb = max(1, p.taps_per_phase.bit_length())
    pb = p.phase_index_bits
    taps = p.taps_per_phase
    tb = max(1, (taps - 1).bit_length())
    nb = pb + tb
    rb = p.rom_addr_bits
    acc_w = p.acc_width
    depth = p.buffer_depth

    m = module if module is not None else \
        RtlModule(name or ("src_rtl_opt" if optimized else "src_rtl"))
    fe = FrontEnd(m, p, FrontEndOptions(generic_modes=len(p.modes)),
                  stream_inputs=stream_inputs)
    fe.declare()

    sb = 3
    state = m.register("state", sb, init=S_IDLE)
    ph_s = m.register("ph_s", pb)
    np_s = m.register("np_s", ab)
    fl_s = m.register("fl_s", fb)
    tap = m.register("tap", tb)
    ch = m.register("ch", 1)
    acc_l = m.register("acc_l", acc_w)
    acc_r = m.register("acc_r", acc_w)
    out_valid = m.register("out_valid_r", 1)
    take = m.register("take_r", 1)
    if not optimized:
        # conservative-refinement leftovers
        ph_copy = m.register("ph_copy", pb)
        np_r_s = m.register("np_r_s", ab)   # duplicated channel-R address
        rnd_l = m.register("rnd_l", dw)
        rnd_r = m.register("rnd_r", dw)
        out_l_r = m.register("out_l_r", dw)
        out_r_r = m.register("out_r_r", dw)

    buf_l = m.memory("buf_l", depth, dw)
    buf_r = m.memory("buf_r", depth, dw)
    rom = m.memory("rom", p.rom_depth, cw, contents=build_rom(p))

    in_mac = state.eq(Const(sb, S_MAC))
    in_bug = state.eq(Const(sb, S_BUG))

    # coefficient address: polyphase interleave + symmetric-half mirror
    phase_used = ph_s if optimized else Ref("ph_copy", pb)
    proto = Cat(tap, phase_used)
    mirrored = Sub(Const(nb, p.prototype_length - 1), proto, width=nb)
    caddr = m.assign(
        "caddr",
        Mux(proto.bit(nb - 1), Slice(mirrored, rb - 1, 0),
            Slice(proto, rb - 1, 0)),
    )
    coef = m.mem_read(rom, caddr, enable=in_mac)

    # sample read: one port per channel RAM, enabled on its turn; the BUG
    # state drives the invalid sentinel address (== depth)
    addr_mux = m.assign(
        "rd_addr",
        Case(state, {
            S_BUG: Const(ab, depth),
            S_MAC: np_s if optimized else
            Mux(ch, Ref("np_r_s", ab), np_s),
        }, default=Const(ab, 0)),
    )
    en_l = m.assign("rd_en_l", Case(state, {
        S_BUG: Const(1, 1),
        S_MAC: ~ch,
    }, default=Const(1, 0)))
    en_r = m.assign("rd_en_r", Case(state, {
        S_BUG: Const(1, 1),
        S_MAC: ch,
    }, default=Const(1, 0)))
    data_l = m.mem_read(buf_l, addr_mux, enable=en_l)
    data_r = m.mem_read(buf_r, addr_mux, enable=en_r)

    # gated sample and the shared multiplier
    sample = m.assign("sample", Mux(ch, data_r, data_l))
    gate = tap.zext(fb + 1).ult(fl_s.zext(fb + 1))
    gated = m.assign("gated", Mux(gate, sample, Const(dw, 0)))
    prod = m.assign("prod", SMul(gated, coef))
    mac_l = m.assign(
        "mac_l", (acc_l + prod.sext(acc_w)).slice(acc_w - 1, 0)
    )
    mac_r = m.assign(
        "mac_r", (acc_r + prod.sext(acc_w)).slice(acc_w - 1, 0)
    )

    # address decrement with wrap at 0 (depth is not a power of two)
    def dec_addr(reg: Ref) -> Expr:
        return Mux(reg.eq(Const(ab, 0)), Const(ab, depth - 1),
                   Slice(Sub(reg, Const(ab, 1), width=ab), ab - 1, 0))

    last_mac = ch & tap.eq(Const(tb, taps - 1))

    # ---------------- register next-state logic -----------------------
    m.set_next(state, Case(state, {
        S_IDLE: Mux(fe.out_req, Const(sb, S_TAKE), Const(sb, S_IDLE)),
        S_TAKE: Mux(fe.fill.eq(Const(fe.fill_bits, 0)),
                    Const(sb, S_BUG), Const(sb, S_MAC)),
        S_BUG: Const(sb, S_IDLE),
        S_MAC: Mux(last_mac, Const(sb, S_ROUND), Const(sb, S_MAC)),
        S_ROUND: Const(sb, S_IDLE if optimized else S_DONE),
        S_DONE: Const(sb, S_IDLE),
    }, default=Const(sb, S_IDLE)))

    m.set_next(ph_s, Case(state, {S_TAKE: fe.phase}, default=ph_s))
    m.set_next(fl_s, Case(state, {S_TAKE: fe.fill}, default=fl_s))
    m.set_next(take, Case(state, {S_TAKE: Const(1, 1)},
                          default=Const(1, 0)))
    m.set_next(tap, Case(state, {
        S_TAKE: Const(tb, 0),
        S_MAC: Mux(ch, Slice(tap + Const(tb, 1), tb - 1, 0), tap),
    }, default=tap))
    m.set_next(ch, Case(state, {
        S_TAKE: Const(1, 0),
        S_MAC: ~ch,
    }, default=ch))

    if optimized:
        m.set_next(np_s, Case(state, {
            S_TAKE: fe.wr_ptr,
            S_MAC: Mux(ch, dec_addr(np_s), np_s),
        }, default=np_s))
        # ROUND folds the rounded result back into the accumulator; the
        # output ports are its low bits (no separate output registers)
        m.set_next(acc_l, Case(state, {
            S_TAKE: Const(acc_w, 0),
            S_MAC: Mux(ch, acc_l, mac_l),
            S_ROUND: Ext(round_saturate_expr(acc_l, p), acc_w, signed=True),
        }, default=acc_l))
        m.set_next(acc_r, Case(state, {
            S_TAKE: Const(acc_w, 0),
            S_MAC: Mux(ch, mac_r, acc_r),
            S_ROUND: Ext(round_saturate_expr(acc_r, p), acc_w, signed=True),
        }, default=acc_r))
        m.set_next(out_valid, Case(state, {
            S_BUG: Const(1, 1),
            S_ROUND: Const(1, 1),
        }, default=Const(1, 0)))
        m.output("out_l", m.assign("out_l_w", Slice(acc_l, dw - 1, 0)))
        m.output("out_r", m.assign("out_r_w", Slice(acc_r, dw - 1, 0)))
        flop_estimate = sb + pb + ab + fb + tb + 1 + 2 * acc_w + 2
    else:
        m.set_next(np_s, Case(state, {
            S_TAKE: fe.wr_ptr,
            S_MAC: Mux(ch, dec_addr(np_s), np_s),
        }, default=np_s))
        m.set_next(Ref("np_r_s", ab), Case(state, {
            S_TAKE: fe.wr_ptr,
            S_MAC: Mux(ch, dec_addr(Ref("np_r_s", ab)), Ref("np_r_s", ab)),
        }, default=Ref("np_r_s", ab)))
        m.set_next(Ref("ph_copy", pb), Case(state, {S_TAKE: fe.phase},
                                            default=Ref("ph_copy", pb)))
        m.set_next(acc_l, Case(state, {
            S_TAKE: Const(acc_w, 0),
            S_MAC: Mux(ch, acc_l, mac_l),
        }, default=acc_l))
        m.set_next(acc_r, Case(state, {
            S_TAKE: Const(acc_w, 0),
            S_MAC: Mux(ch, mac_r, acc_r),
        }, default=acc_r))
        m.set_next(Ref("rnd_l", dw), Case(state, {
            S_ROUND: round_saturate_expr(acc_l, p),
        }, default=Ref("rnd_l", dw)))
        m.set_next(Ref("rnd_r", dw), Case(state, {
            S_ROUND: round_saturate_expr(acc_r, p),
        }, default=Ref("rnd_r", dw)))
        m.set_next(Ref("out_l_r", dw), Case(state, {
            S_BUG: Const(dw, 0),
            S_DONE: Ref("rnd_l", dw),
        }, default=Ref("out_l_r", dw)))
        m.set_next(Ref("out_r_r", dw), Case(state, {
            S_BUG: Const(dw, 0),
            S_DONE: Ref("rnd_r", dw),
        }, default=Ref("out_r_r", dw)))
        m.set_next(out_valid, Case(state, {
            S_BUG: Const(1, 1),
            S_DONE: Const(1, 1),
        }, default=Const(1, 0)))
        m.output("out_l", Ref("out_l_r", dw))
        m.output("out_r", Ref("out_r_r", dw))
        flop_estimate = (sb + 2 * pb + 2 * ab + fb + tb + 1 +
                         2 * acc_w + 4 * dw + 2)

    m.output("out_valid", out_valid)
    fe.finish(take=take, buf_l=buf_l, buf_r=buf_r)
    m.validate()
    return RtlDesign(
        module=m, optimized=optimized, flop_estimate=flop_estimate,
        out_l_net="out_l_w" if optimized else "out_l_r",
        out_r_net="out_r_w" if optimized else "out_r_r",
        out_valid_net="out_valid_r",
    )
