"""Sample-event schedules and their time quantisation (paper Figure 7).

The golden C++ model is untimed: which input samples precede a given
output sample follows from the *exact* rational sample periods.  The
clocked implementations only see sample events at clock edges, slightly
delaying them and thereby changing the buffer content observed by some
outputs.  To keep bit-accurate comparison possible, the paper propagated
this quantisation back into the golden model; we reproduce that by
generating the ordered event schedule once -- exact or clock-quantised --
and feeding the *same* schedule to the untimed models, while the clocked
models derive it independently from their producer/consumer threads (and
are checked to agree).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, List, Optional, Sequence, Tuple

from .params import SrcParams

#: event kinds, in tie-break priority order at equal time
KIND_MODE = "mode"
KIND_IN = "in"
KIND_OUT = "out"

_PRIORITY = {KIND_MODE: 0, KIND_IN: 1, KIND_OUT: 2}


@dataclass(frozen=True)
class SampleEvent:
    """One scheduled event: an input arrival, output request or mode change.

    ``time_ps`` is exact (a Fraction) for the untimed schedule and an
    integer multiple of the clock period for the quantised schedule.
    ``value`` is the input index for ``in``, the output index for ``out``
    and the new mode for ``mode``.
    """

    time_ps: Fraction
    kind: str
    value: int


def make_schedule(
    params: SrcParams,
    mode: int,
    n_inputs: int,
    quantized: bool = False,
    mode_changes: Sequence[Tuple[int, int]] = (),
) -> List[SampleEvent]:
    """Build the ordered event schedule for a conversion run.

    Parameters
    ----------
    params:
        Design parameters (rates come from ``params.modes[mode]``).
    mode:
        Initial operation mode (applied at t = 0).
    n_inputs:
        Number of input samples to schedule.
    quantized:
        When True, every event time is quantised *up* to the next clock
        edge (paper Figure 7, lower half); ties between an input and an
        output landing on the same edge resolve input-first.
    mode_changes:
        Optional ``(input_index, new_mode)`` pairs: the mode-change event
        lands in a *guaranteed-idle gap* shortly before the arrival of
        input *input_index* -- at least ``max_latency_cycles`` clock
        periods after the previous event and before the next one, so no
        clocked implementation can be mid-computation when the flush
        applies (real systems stop the stream to reconfigure).  Input and
        output periods follow the new mode from that moment on.

    Returns
    -------
    list of :class:`SampleEvent`, ordered by (time, mode < in < out).
    """
    if not 0 <= mode < len(params.modes):
        raise ValueError(f"mode {mode} out of range")
    events: List[SampleEvent] = [SampleEvent(Fraction(0), KIND_MODE, mode)]
    changes = dict(mode_changes)
    for index, new_mode in changes.items():
        if not 0 <= new_mode < len(params.modes):
            raise ValueError(f"mode {new_mode} out of range")
        if not 0 <= index < n_inputs:
            raise ValueError(
                f"mode-change input index {index} outside the run "
                f"(0..{n_inputs - 1})"
            )
    clk = Fraction(params.clock_period_ps)
    latency_guard = params.max_latency_cycles * clk
    small_guard = 4 * clk

    # Unified generation: walk input and output streams together so a
    # mode change can be placed in a verified-idle gap between events.
    current_mode = mode
    t_in = Fraction(0)        # time of the most recent input arrival
    t_out = Fraction(0)       # time of the most recent output request
    t_last_in = Fraction(0)   # most recent input (or mode) event
    t_last_out = Fraction(0)  # most recent output event
    j = 0  # next input index
    k = 0  # next output index
    pending_change: Optional[int] = None

    def period_in() -> Fraction:
        return params.sample_period_ps(params.modes[current_mode].f_in)

    def period_out() -> Fraction:
        return params.sample_period_ps(params.modes[current_mode].f_out)

    while j < n_inputs:
        if j in changes and pending_change is None:
            pending_change = changes.pop(j)
        next_in = t_in + period_in()
        next_out = t_out + period_out()
        if pending_change is not None:
            # Slot the mode event into an idle gap: the preceding output
            # must have fully drained (latency guard); inputs and the
            # upcoming events only need a small settling margin.
            window_lo = max(t_last_out + latency_guard,
                            t_last_in + small_guard)
            window_hi = min(next_in, next_out) - small_guard
            if window_lo < window_hi:
                t_mode = (window_lo + window_hi) / 2
                current_mode = pending_change
                pending_change = None
                events.append(SampleEvent(t_mode, KIND_MODE, current_mode))
                t_last_in = t_mode
                continue  # re-derive periods under the new mode
        # At exact ties the input event wins (the final sort also orders
        # in before out at equal times).
        if next_in <= next_out:
            events.append(SampleEvent(next_in, KIND_IN, j))
            t_in = next_in
            t_last_in = max(t_last_in, next_in)
            j += 1
        else:
            events.append(SampleEvent(next_out, KIND_OUT, k))
            t_out = next_out
            t_last_out = max(t_last_out, next_out)
            k += 1
    if pending_change is not None:
        raise ValueError(
            "could not place a mode-change event in an idle gap before "
            "the input stream ended; extend n_inputs or move the change"
        )
    # no outputs beyond the final input (uniform run length at all levels)

    if quantized:
        clk = params.clock_period_ps
        events = [
            SampleEvent(Fraction(-((-ev.time_ps) // clk) * clk), ev.kind,
                        ev.value)
            for ev in events
        ]

    events.sort(key=lambda ev: (ev.time_ps, _PRIORITY[ev.kind], ev.value))
    return events


def count_outputs(schedule: Iterable[SampleEvent]) -> int:
    return sum(1 for ev in schedule if ev.kind == KIND_OUT)


def schedule_clock_ticks(params: SrcParams,
                         schedule: Sequence[SampleEvent]) -> List[int]:
    """Clock-tick indices of a quantised schedule (for the clocked models)."""
    clk = params.clock_period_ps
    ticks = []
    for ev in schedule:
        if ev.time_ps % clk:
            raise ValueError("schedule is not clock-quantised")
        ticks.append(int(ev.time_ps // clk))
    return ticks
