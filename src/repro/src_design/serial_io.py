"""Serial audio I/O interfaces around the SRC (paper Section 4.3).

The paper notes that the behavioural design "already contained RT-level
modules", in particular the I/O interfaces, which "only contained simple
control functionality, which was easy to implement at RTL".  In a car
multimedia system those interfaces are serial audio links (I2S-style):
a bit clock, a word-select line alternating left/right, and a data
line.

This module provides the two RTL blocks and a wrapper that builds a
complete serial-in/serial-out SRC:

* :func:`add_serial_receiver` -- deserialises an I2S-like stream into
  parallel stereo frames with a one-cycle ``in_valid`` strobe;
* :func:`add_serial_transmitter` -- serialises output frames back onto
  a serial link, double-buffered so a frame may arrive while the
  previous one is still shifting out;
* :func:`build_serial_src` -- the optimised RTL SRC with both
  interfaces attached.

Framing (one frame = ``2 * data_width`` bit-clock cycles):
``ws`` = 0 during the left word, 1 during the right word; data bits are
MSB first, one bit per cycle, aligned to the start of each word.  For
simplicity the bit clock equals the system clock (the system clock is
far faster than the sample rate, so each serial frame occupies a small
fraction of the sample period -- the receiver strobes a parallel frame
the cycle after the last right-channel bit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..rtl.expr import Case, Cat, Const, Expr, Mux, Ref, Slice
from ..rtl.ir import RtlModule
from .params import SrcParams


@dataclass
class SerialReceiverPins:
    """Nets the receiver exposes to the rest of the design."""

    frame_valid: Ref
    left: Ref
    right: Ref


def add_serial_receiver(m: RtlModule, params: SrcParams,
                        prefix: str = "rx") -> SerialReceiverPins:
    """Emit the serial receiver into *m*.

    Creates inputs ``<prefix>_sd`` (serial data), ``<prefix>_ws`` (word
    select) and ``<prefix>_en`` (link active).  A parallel frame strobe
    fires one cycle after the final right-word bit.
    """
    dw = params.data_width
    cb = max(1, (dw - 1).bit_length())

    sd = m.input(f"{prefix}_sd", 1)
    ws = m.input(f"{prefix}_ws", 1)
    en = m.input(f"{prefix}_en", 1)

    bitcnt = m.register(f"{prefix}_bitcnt", cb, init=0)
    ws_d = m.register(f"{prefix}_ws_d", 1, init=0)
    shift = m.register(f"{prefix}_shift", dw, init=0)
    left = m.register(f"{prefix}_left", dw, init=0)
    right = m.register(f"{prefix}_right", dw, init=0)
    valid = m.register(f"{prefix}_valid", 1, init=0)

    last_bit = bitcnt.eq(Const(cb, dw - 1))
    next_cnt = Mux(last_bit, Const(cb, 0),
                   Slice(bitcnt + Const(cb, 1), cb - 1, 0))
    m.set_next(bitcnt, Mux(en, next_cnt, Const(cb, 0)))
    m.set_next(ws_d, Mux(en, ws, Const(1, 0)))

    shifted = Slice(Cat(Slice(shift, dw - 2, 0), sd), dw - 1, 0)
    m.set_next(shift, Mux(en, shifted, Const(dw, 0)))

    # word complete: the shifter holds dw-1 bits, sd is the last one
    word_done = m.assign(f"{prefix}_word_done", en & last_bit)
    m.set_next(left, Mux(word_done & ~ws, shifted, left))
    m.set_next(right, Mux(word_done & ws, shifted, right))
    # frame strobe after the right word completes
    m.set_next(valid, word_done & ws)

    return SerialReceiverPins(frame_valid=valid, left=left, right=right)


@dataclass
class SerialTransmitterPins:
    """Nets the transmitter consumes / drives."""

    busy: Ref


def add_serial_transmitter(m: RtlModule, params: SrcParams,
                           frame_valid: Expr, left: Expr, right: Expr,
                           prefix: str = "tx") -> SerialTransmitterPins:
    """Emit the serial transmitter into *m*.

    Creates outputs ``<prefix>_sd``, ``<prefix>_ws`` and
    ``<prefix>_active``.  A new frame (``frame_valid`` pulse with the
    parallel words) is double-buffered and then shifted out MSB first,
    left word then right word.
    """
    dw = params.data_width
    cb = max(1, (2 * dw - 1).bit_length())
    total = 2 * dw

    hold_l = m.register(f"{prefix}_hold_l", dw, init=0)
    hold_r = m.register(f"{prefix}_hold_r", dw, init=0)
    pending = m.register(f"{prefix}_pending", 1, init=0)
    shift = m.register(f"{prefix}_shift", 2 * dw, init=0)
    bitcnt = m.register(f"{prefix}_bitcnt", cb, init=0)
    active = m.register(f"{prefix}_active", 1, init=0)

    m.set_next(hold_l, Mux(frame_valid, left, hold_l))
    m.set_next(hold_r, Mux(frame_valid, right, hold_r))

    last = bitcnt.eq(Const(cb, total - 1))
    start = m.assign(f"{prefix}_start",
                     pending & (~active | last))
    m.set_next(pending,
               Mux(frame_valid, Const(1, 1),
                   Mux(start, Const(1, 0), pending)))
    m.set_next(active,
               Mux(start, Const(1, 1),
                   Mux(last, Const(1, 0), active)))
    m.set_next(bitcnt,
               Mux(start, Const(cb, 0),
                   Mux(active & ~last,
                       Slice(bitcnt + Const(cb, 1), cb - 1, 0),
                       bitcnt)))
    loaded = Cat(hold_l, hold_r)  # left word shifts out first (MSB first)
    m.set_next(shift,
               Mux(start, loaded,
                   Mux(active,
                       Slice(Cat(Slice(shift, 2 * dw - 2, 0), Const(1, 0)),
                             2 * dw - 1, 0),
                       shift)))

    m.output(f"{prefix}_sd", m.assign(f"{prefix}_sd_w",
                                      shift.bit(2 * dw - 1) & active))
    # ws: 0 during the left word (bits 0..dw-1), 1 during the right word
    m.output(f"{prefix}_ws",
             m.assign(f"{prefix}_ws_w",
                      active & bitcnt.uge(Const(cb, dw))))
    m.output(f"{prefix}_active", active)
    return SerialTransmitterPins(busy=active)


def build_serial_src(params: SrcParams,
                     name: str = "src_serial") -> RtlModule:
    """The optimised RTL SRC with serial receive and transmit interfaces.

    The parallel stream inputs of the core design are driven by the
    serial receiver; the output frames feed the serial transmitter.
    ``cfg_valid``/``cfg_mode``/``out_req`` stay parallel (they belong to
    the configuration/host interface), and the parallel outputs remain
    visible alongside the serial link.
    """
    from .rtl_design import build_rtl_design

    m = RtlModule(name)
    rx = add_serial_receiver(m, params)
    core = build_rtl_design(
        params, optimized=True, module=m,
        stream_inputs={
            "in_valid": rx.frame_valid,
            "in_l": rx.left,
            "in_r": rx.right,
        },
    )
    dw = params.data_width
    add_serial_transmitter(
        m, params,
        frame_valid=Ref(core.out_valid_net, 1),
        left=Ref(core.out_l_net, dw),
        right=Ref(core.out_r_net, dw),
    )
    m.validate()
    return m


def build_serial_receiver_module(params: SrcParams) -> RtlModule:
    """Standalone receiver module (parallel frame outputs exposed)."""
    m = RtlModule("serial_rx")
    pins = add_serial_receiver(m, params)
    m.output("frame_valid", pins.frame_valid)
    m.output("left", pins.left)
    m.output("right", pins.right)
    m.validate()
    return m


def build_serial_transmitter_module(params: SrcParams) -> RtlModule:
    """Standalone transmitter module (parallel frame inputs exposed)."""
    m = RtlModule("serial_tx")
    fv = m.input("frame_valid", 1)
    left = m.input("left", params.data_width)
    right = m.input("right", params.data_width)
    add_serial_transmitter(m, params, fv, left, right)
    m.validate()
    return m


class SerialLink:
    """Helper that drives/reads the serial protocol in simulation.

    Used by testbenches to feed frames into a receiver DUT and decode
    frames from a transmitter DUT.
    """

    def __init__(self, params: SrcParams):
        self.params = params

    def frame_bits(self, left: int, right: int) -> List[Tuple[int, int]]:
        """(ws, sd) pairs of one frame, in transmission order."""
        dw = self.params.data_width
        mask = (1 << dw) - 1
        bits: List[Tuple[int, int]] = []
        for ws, word in ((0, left & mask), (1, right & mask)):
            for bit_index in range(dw - 1, -1, -1):
                bits.append((ws, (word >> bit_index) & 1))
        return bits

    def send_frame(self, sim, left: int, right: int,
                   prefix: str = "rx") -> None:
        """Clock one stereo frame into a receiver (bit clock = clock)."""
        sim.set_input(f"{prefix}_en", 1)
        for ws, sd in self.frame_bits(left, right):
            sim.set_input(f"{prefix}_ws", ws)
            sim.set_input(f"{prefix}_sd", sd)
            sim.step()
        sim.set_input(f"{prefix}_en", 0)

    def receive_frame(self, sim, prefix: str = "tx",
                      max_wait: int = 4096) -> Optional[Tuple[int, int]]:
        """Decode the next stereo frame from a transmitter DUT."""
        dw = self.params.data_width
        # wait for the link to go active
        for _ in range(max_wait):
            if sim.get(f"{prefix}_active"):
                break
            sim.step()
        else:
            return None
        bits: List[int] = []
        while len(bits) < 2 * dw:
            bits.append(sim.get(f"{prefix}_sd"))
            sim.step()
        left = 0
        right = 0
        for b in bits[:dw]:
            left = (left << 1) | b
        for b in bits[dw:]:
            right = (right << 1) | b
        return left, right
