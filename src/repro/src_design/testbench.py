"""Testbenches driving the SRC models inside the simulation kernel.

The TLM testbench mirrors paper Figure 5: an independent producer thread
writes input samples at the input rate, an independent consumer thread
reads output samples at the output rate, and a control action configures
the operation mode.  Event times come from the same schedule the golden
model consumes, so bit-accurate comparison across levels is meaningful.

Tie-breaking: when an input and an output land on the same instant, the
input wins (see :mod:`repro.src_design.schedule`); the consumer thread
therefore wakes one picosecond late, which can never reorder it past a
*different* event (the minimum non-zero event gap at audio rates is far
larger than 1 ps).
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from ..kernel.context import current_simulation
from ..kernel.event import Timeout
from ..kernel.module import Module
from ..kernel.scheduler import Simulation
from .algorithmic import AccessMonitor
from .params import SrcParams
from .schedule import KIND_IN, KIND_MODE, KIND_OUT, SampleEvent
from .tlm import SrcChannelMonolithic, SrcChannelRefined


def _round_ps(time_ps: Fraction) -> int:
    """Round an exact event time to integer picoseconds (half up)."""
    return int(time_ps + Fraction(1, 2))


class TlmTestbench(Module):
    """Producer/consumer testbench around an SRC channel."""

    def __init__(self, name: str, params: SrcParams, channel,
                 schedule: Sequence[SampleEvent],
                 inputs: Sequence[Sequence[int]]):
        super().__init__(name)
        self.params = params
        self.channel = channel
        self.inputs = inputs
        self.outputs: List[Tuple[int, ...]] = []
        self._producer_events = [
            ev for ev in schedule if ev.kind in (KIND_MODE, KIND_IN)
        ]
        self._consumer_events = [
            ev for ev in schedule if ev.kind == KIND_OUT
        ]
        self.add_thread(self._producer, name=f"{name}.producer")
        self.add_thread(self._consumer, name=f"{name}.consumer")

    def _wait_until(self, target_ps: int):
        now = current_simulation().time_ps
        if target_ps > now:
            yield Timeout(target_ps - now)

    def _producer(self):
        for ev in self._producer_events:
            yield from self._wait_until(_round_ps(ev.time_ps))
            if ev.kind == KIND_MODE:
                self.channel.set_mode(ev.value)
            else:
                yield from self.channel.write_sample(self.inputs[ev.value])

    def _consumer(self):
        for ev in self._consumer_events:
            # +1 ps: input-before-output tie-break (see module docstring).
            yield from self._wait_until(_round_ps(ev.time_ps) + 1)
            frame = yield from self.channel.read_sample()
            self.outputs.append(tuple(frame))


class RtlDutDriver:
    """Drives an :class:`RtlSimulator` or :class:`GateSimulator` DUT.

    Both simulators share the ``set_input`` / ``step`` / ``get`` API; the
    driver converts stimulus frames to port values and output ports back
    to signed samples.
    """

    def __init__(self, sim, params: SrcParams):
        self.sim = sim
        self.params = params

    def cycle(self, frame=None, cfg=None, req=False):
        sim = self.sim
        sim.set_input("in_valid", 1 if frame is not None else 0)
        if frame is not None:
            sim.set_input("in_l", frame[0])
            sim.set_input("in_r", frame[1])
        sim.set_input("cfg_valid", 1 if cfg is not None else 0)
        if cfg is not None:
            sim.set_input("cfg_mode", cfg)
        sim.set_input("out_req", 1 if req else 0)
        sim.step()
        if sim.get("out_valid"):
            dw = self.params.data_width
            from ..datatypes.integers import wrap_signed

            return (wrap_signed(sim.get("out_l"), dw),
                    wrap_signed(sim.get("out_r"), dw))
        return None


class BehavioralDutDriver:
    """Drives a :class:`~repro.src_design.behavioral.BehavioralSimulation`."""

    def __init__(self, sim, params: SrcParams):
        self.sim = sim
        self.params = params

    def cycle(self, frame=None, cfg=None, req=False):
        if frame is not None:
            self.sim.drive_input(frame[0], frame[1])
        if cfg is not None:
            self.sim.drive_cfg(cfg)
        if req:
            self.sim.drive_req()
        result = self.sim.step()
        if result is None:
            return None
        from ..datatypes.integers import wrap_signed

        dw = self.params.data_width
        return (wrap_signed(result[0], dw), wrap_signed(result[1], dw))


def run_clocked(
    params: SrcParams,
    driver,
    schedule: Sequence[SampleEvent],
    inputs: Sequence[Sequence[int]],
    drain_cycles: Optional[int] = None,
    on_cycle=None,
) -> List[Tuple[int, ...]]:
    """Run a clocked DUT over a *clock-quantised* schedule.

    The schedule's event times must be integer multiples of the clock
    period (build it with ``make_schedule(..., quantized=True)``); the
    matching golden reference is the algorithmic model run over the same
    quantised schedule -- exactly the paper's Figure 7 methodology.

    ``on_cycle(tick, result)`` is invoked after every clock cycle with
    the tick index and the output frame produced on that tick (or
    ``None``) -- the differential-verification harness uses it to record
    which cycle each output frame appeared on and to sample coverage.
    """
    clk = params.clock_period_ps
    by_tick = {}
    expected = 0
    last_tick = 0
    for ev in schedule:
        if ev.time_ps % clk:
            raise ValueError(
                "run_clocked needs a clock-quantised schedule "
                "(make_schedule(..., quantized=True))"
            )
        tick = int(ev.time_ps // clk)
        by_tick.setdefault(tick, []).append(ev)
        last_tick = max(last_tick, tick)
        if ev.kind == KIND_OUT:
            expected += 1

    outputs: List[Tuple[int, ...]] = []
    drain = drain_cycles if drain_cycles is not None else \
        params.max_latency_cycles + 8
    tick = 0
    while tick <= last_tick + drain and len(outputs) < expected:
        frame = None
        cfg = None
        req = False
        for ev in by_tick.get(tick, ()):
            if ev.kind == KIND_IN:
                frame = inputs[ev.value]
            elif ev.kind == KIND_OUT:
                req = True
            elif ev.kind == KIND_MODE:
                cfg = ev.value
        result = driver.cycle(frame=frame, cfg=cfg, req=req)
        if result is not None:
            outputs.append(tuple(result))
        if on_cycle is not None:
            on_cycle(tick, result)
        tick += 1
    if len(outputs) != expected:
        raise RuntimeError(
            f"clocked run produced {len(outputs)} outputs, "
            f"expected {expected}"
        )
    return outputs


def run_tlm(
    params: SrcParams,
    schedule: Sequence[SampleEvent],
    inputs: Sequence[Sequence[int]],
    refined: bool = True,
    monitor: Optional[AccessMonitor] = None,
    with_corner_bug: bool = True,
) -> List[Tuple[int, ...]]:
    """Simulate the TLM SRC over *schedule*; returns the output frames.

    ``refined`` selects between the monolithic hierarchical channel
    (paper Figure 5) and the refined three-submodule channel (Figure 6).
    """
    channel_cls = SrcChannelRefined if refined else SrcChannelMonolithic
    top = Module("top")
    top.src = channel_cls("src", params, monitor=monitor,
                          with_corner_bug=with_corner_bug)
    top.tb = TlmTestbench("tb", params, top.src, schedule, inputs)
    with Simulation(top) as sim:
        sim.run()
        return list(top.tb.outputs)
