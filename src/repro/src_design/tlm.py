"""The SystemC-2.0-with-channels model of the SRC (paper Section 4.2).

Two variants are provided, matching the paper's two structural steps:

* :class:`SrcChannelMonolithic` -- the first structural refinement
  (Figure 5): the whole algorithm encapsulated in one hierarchical
  channel implementing ``SRC_CTRL``, ``SampleWriteIF`` and
  ``SampleReadIF``.
* :class:`SrcChannelRefined` -- the refined channel (Figure 6): three
  submodules roughly following the C++ class structure (input buffer,
  polyphase coefficient storage, main functional behaviour), a third
  thread modelling the functional behaviour in the main module, explicit
  ``sc_event`` synchronisation, and method calls translated into
  interface method calls through the submodule boundaries.

Both are bit-accurate against the algorithmic golden model on the same
event schedule.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..kernel.channels import HierarchicalChannel
from ..kernel.event import Event
from ..kernel.module import Module
from .algorithmic import (AccessMonitor, InputBuffer, PolyphaseFilter,
                          filter_sample)
from .interfaces import SampleReadIF, SampleWriteIF, SrcCtrlIF
from .params import SrcParams


class SrcChannelMonolithic(HierarchicalChannel, SrcCtrlIF, SampleWriteIF,
                           SampleReadIF):
    """The SRC as one hierarchical channel (paper Figure 5).

    The algorithm runs inside the channel's interface methods; the only
    concurrency is between the external producer/consumer threads, which
    the channel decouples through its internal state.
    """

    def __init__(self, name: str, params: SrcParams, mode: int = 0,
                 monitor: Optional[AccessMonitor] = None,
                 with_corner_bug: bool = True):
        super().__init__(name)
        self.params = params
        self.filter = PolyphaseFilter(params)
        self.buffers = [InputBuffer(params.buffer_depth, monitor,
                                    width=params.data_width)
                        for _ in range(params.n_channels)]
        self.with_corner_bug = with_corner_bug
        self._mode = mode
        self._position = 0
        self._fill = 0

    # -- SrcCtrlIF ---------------------------------------------------------
    def set_mode(self, mode: int) -> None:
        if not 0 <= mode < len(self.params.modes):
            raise ValueError(f"mode {mode} out of range")
        self._mode = mode
        self._position = 0
        self._fill = 0
        for buf in self.buffers:
            buf.flush()

    def get_mode(self) -> int:
        return self._mode

    # -- SampleWriteIF -------------------------------------------------------
    def write_sample(self, frame: Sequence[int]):
        self._push(frame)
        return
        yield  # pragma: no cover - makes this a generator (non-suspending IMC)

    def _push(self, frame: Sequence[int]) -> None:
        for buf, sample in zip(self.buffers, frame):
            buf.write(sample)
        self._position = self.params.pos_after_input(self._position)
        if self._fill < self.params.taps_per_phase:
            self._fill += 1

    # -- SampleReadIF ---------------------------------------------------------
    def read_sample(self):
        frame = self._compute()
        return frame
        yield  # pragma: no cover - makes this a generator (non-suspending IMC)

    def _compute(self) -> Tuple[int, ...]:
        params = self.params
        self._position = params.pos_after_output(self._position, self._mode)
        if self._fill == 0:
            if self.with_corner_bug:
                for buf in self.buffers:
                    buf.read_raw(buf.depth)
            return tuple([0] * params.n_channels)
        phase = params.phase_from_pos(self._position)
        return tuple(
            filter_sample(params, buf.read_iterator(),
                          self.filter.coefficient_iterator(phase))
            for buf in self.buffers
        )


# ----------------------------------------------------------------------
# Refined hierarchical channel (Figure 6)
# ----------------------------------------------------------------------

class InputBufferModule(Module, SampleWriteIF):
    """Submodule owning the per-channel ring buffers (Figure 6, left)."""

    def __init__(self, name: str, params: SrcParams,
                 monitor: Optional[AccessMonitor] = None):
        super().__init__(name)
        self.params = params
        self.buffers = [InputBuffer(params.buffer_depth, monitor,
                                    width=params.data_width)
                        for _ in range(params.n_channels)]
        self.fill = 0
        self.sample_written = Event(f"{name}.sample_written")

    def write_sample(self, frame: Sequence[int]):
        for buf, sample in zip(self.buffers, frame):
            buf.write(sample)
        if self.fill < self.params.taps_per_phase:
            self.fill += 1
        # Explicit event object announcing new data (paper Section 4.2).
        self.sample_written.notify_immediate()
        return
        yield  # pragma: no cover - non-suspending IMC

    def flush(self) -> None:
        self.fill = 0
        for buf in self.buffers:
            buf.flush()

    def read_raw(self, channel: int, address: int) -> int:
        return self.buffers[channel].read_raw(address)

    def newest_index(self, channel: int) -> int:
        return self.buffers[channel].newest_index


class CoefficientStorageModule(Module):
    """Submodule owning the polyphase coefficient ROM (Figure 6, middle)."""

    def __init__(self, name: str, params: SrcParams):
        super().__init__(name)
        self.params = params
        self._filter = PolyphaseFilter(params)

    def coefficient(self, phase: int, tap: int) -> int:
        return self._filter.coefficient(phase, tap)

    def coefficient_iterator(self, phase: int):
        return self._filter.coefficient_iterator(phase)


class SrcMainModule(Module):
    """Main functional behaviour as a thread (Figure 6, right).

    The consumer's ``read_sample`` IMC posts a request event; this thread
    wakes, performs the convolution by calling into the buffer and
    coefficient submodules, and answers with a done event -- the paper's
    "third thread modelling the functional behaviour", synchronised by
    explicit event objects.
    """

    def __init__(self, name: str, params: SrcParams,
                 input_buffer: InputBufferModule,
                 coefficients: CoefficientStorageModule,
                 with_corner_bug: bool = True):
        super().__init__(name)
        self.params = params
        self.input_buffer = input_buffer
        self.coefficients = coefficients
        self.with_corner_bug = with_corner_bug
        self.mode = 0
        self.position = 0
        self.request = Event(f"{name}.request")
        self.done = Event(f"{name}.done")
        self.result: Tuple[int, ...] = ()
        # Initialised at simulation start so the thread parks on its
        # request event before the first consumer call arrives.
        self.add_thread(self._behaviour, name=f"{name}.behaviour")

    def reconfigure(self, mode: int) -> None:
        self.mode = mode
        self.position = 0
        self.input_buffer.flush()

    def on_input(self) -> None:
        self.position = self.params.pos_after_input(self.position)

    def _behaviour(self):
        params = self.params
        while True:
            yield self.request
            self.position = params.pos_after_output(self.position, self.mode)
            if self.input_buffer.fill == 0:
                if self.with_corner_bug:
                    for channel in range(params.n_channels):
                        self.input_buffer.read_raw(
                            channel, params.buffer_depth)
                self.result = tuple([0] * params.n_channels)
            else:
                phase = params.phase_from_pos(self.position)
                frame = []
                for channel in range(params.n_channels):
                    buf = self.input_buffer.buffers[channel]
                    frame.append(filter_sample(
                        params,
                        buf.read_iterator(),
                        self.coefficients.coefficient_iterator(phase),
                    ))
                self.result = tuple(frame)
            self.done.notify_immediate()


class SrcChannelRefined(HierarchicalChannel, SrcCtrlIF, SampleWriteIF,
                        SampleReadIF):
    """The refined hierarchical channel of paper Figure 6."""

    def __init__(self, name: str, params: SrcParams, mode: int = 0,
                 monitor: Optional[AccessMonitor] = None,
                 with_corner_bug: bool = True):
        super().__init__(name)
        self.params = params
        self.input_buffer = InputBufferModule(f"{name}.buffer", params,
                                              monitor)
        self.coefficients = CoefficientStorageModule(f"{name}.rom", params)
        self.main = SrcMainModule(f"{name}.main", params, self.input_buffer,
                                  self.coefficients, with_corner_bug)
        self.main.mode = mode

    # -- SrcCtrlIF ----------------------------------------------------------
    def set_mode(self, mode: int) -> None:
        if not 0 <= mode < len(self.params.modes):
            raise ValueError(f"mode {mode} out of range")
        self.main.reconfigure(mode)

    def get_mode(self) -> int:
        return self.main.mode

    # -- SampleWriteIF ---------------------------------------------------------
    def write_sample(self, frame: Sequence[int]):
        yield from self.input_buffer.write_sample(frame)
        self.main.on_input()

    # -- SampleReadIF -----------------------------------------------------------
    def read_sample(self):
        self.main.request.notify_immediate()
        yield self.main.done
        return self.main.result
