"""Synthesisable behavioural SRC (paper Sections 4.3 / 4.4).

Two source variants of the main process are built here:

* **unoptimised** (the first synthesisable behavioural model): explicit
  per-tap handshaking with the input buffer (request pulse + grant
  wait), pessimistic bit widths inherited from the conservative
  cut-and-paste refinement, redundant temporaries ("code
  proliferation"), every value registered, no register sharing, and a
  mode decode kept generic for eight modes;
* **optimised**: handshaking removed in favour of a fixed cycle scheme,
  tightened widths, cleaned-up temporaries (dead register writes
  pruned), lifetime-based register sharing, and the mode table folded to
  the two real modes.

Both variants contain the golden-model bug: when an output is requested
while no sample has arrived since the flush, a leftover prefetch reads
the *invalid* buffer address ``buffer_depth`` before the silence
early-out -- functionally invisible, flagged only by a checking memory
model at gate level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..datatypes.integers import max_signed, min_signed
from ..hls.binding import RegisterBinding, bind_registers
from ..hls.codegen import GeneratedFsm, generate_rtl
from ..hls.compiled import CompiledFsm, CompiledFsmBatch
from ..hls.interpreter import FsmInterpreter, MemMonitor
from ..hls.vectorized import VectorizedFsm, VectorizedFsmBatch
from ..hls.ir import (Assign, For, HlsProgram, If, MemReadStmt, PortWrite,
                      WaitCycle, WaitUntil)
from ..hls.schedule import (Fsm, Scheduler, SchedulingConstraints,
                            prune_dead_reg_writes)
from ..rtl.expr import (Add, Case, Cat, Const, Expr, Mux, Ref, Slice, SMul,
                        Sra, Sub)
from ..rtl.ir import RtlModule
from .coefficients import build_rom
from .io_interfaces import FrontEnd, FrontEndOptions
from .params import SrcParams

#: extra accumulator bits of the unoptimised design ("bit-widths were
#: chosen too pessimistic"); 35 -> 48 for the paper configuration
UNOPT_ACC_EXTRA = 13
#: guard bits the conservative refinement kept on each multiplier
#: operand (inherited from the C specification's integer types)
UNOPT_MUL_GUARD = 2
#: extra address guard bits of the unoptimised design
UNOPT_ADDR_EXTRA = 2
#: mode-decode generality of the unoptimised design
UNOPT_GENERIC_MODES = 8


@dataclass(frozen=True)
class BehavioralOptions:
    """Independent optimisation knobs of the behavioural source/synthesis.

    Each flag corresponds to one of the paper's Section 4.4 optimisation
    steps, so the ablation benchmarks can flip them one at a time:

    * ``handshake`` -- per-tap request/grant protocol with the input
      buffer ("Handshaking in loops");
    * ``pessimistic_widths`` -- the conservative refinement's oversized
      accumulators, multiplier guard bits and address registers
      ("Bit-widths");
    * ``registered_temps`` -- redundant registered temporaries from the
      cut-and-paste refinement ("Code proliferation");
    * ``share_registers`` / ``prune_dead_writes`` -- synthesis-side
      cleanup quality (register allocation, dead-value elimination);
    * ``generic_modes`` -- mode-decode sized for this many modes
      ("Generality": the template-generic code kept eight).
    """

    handshake: bool = False
    pessimistic_widths: bool = False
    registered_temps: bool = False
    share_registers: bool = True
    prune_dead_writes: bool = True
    generic_modes: int = 0  # 0 = the real mode count

    @classmethod
    def unoptimized(cls) -> "BehavioralOptions":
        """The first synthesisable behavioural model (Section 4.3)."""
        return cls(handshake=True, pessimistic_widths=True,
                   registered_temps=True, share_registers=False,
                   prune_dead_writes=False,
                   generic_modes=UNOPT_GENERIC_MODES)

    @classmethod
    def optimized(cls) -> "BehavioralOptions":
        """The optimised behavioural model (Section 4.4)."""
        return cls()

    @property
    def display_name(self) -> str:
        return "opt" if self == self.optimized() else "custom"


def _coerce_options(optimized) -> "BehavioralOptions":
    if isinstance(optimized, BehavioralOptions):
        return optimized
    return (BehavioralOptions.optimized() if optimized
            else BehavioralOptions.unoptimized())


def round_saturate_expr(acc: Expr, params: SrcParams) -> Expr:
    """Scale a MAC accumulator to an output sample (see params)."""
    w = acc.width
    shift = params.coef_frac_bits
    dw = params.data_width
    half = 1 << (shift - 1)
    x = Add(acc.sext(w + 1), Const(w + 1, half), width=w + 1)
    sh = Sra(x, shift)
    lo = min_signed(dw)
    hi = max_signed(dw)
    too_small = sh.slt(Const(w + 1, lo))
    too_big = sh.sgt(Const(w + 1, hi))
    return Mux(too_small, Const(dw, lo),
               Mux(too_big, Const(dw, hi), Slice(sh, dw - 1, 0)))


def build_main_program(params: SrcParams, optimized) -> HlsProgram:
    """The behavioural main process of the SRC.

    *optimized* is a bool preset or a :class:`BehavioralOptions`.
    """
    options = _coerce_options(optimized)
    p = params
    dw = p.data_width
    cw = p.coef_width
    ab = p.addr_bits
    fb = max(1, p.taps_per_phase.bit_length())
    pb = p.phase_index_bits
    taps = p.taps_per_phase
    tb = max(1, (taps - 1).bit_length()) if taps > 1 else 1
    nb = pb + tb  # prototype index width (N = n_phases * taps, powers of 2)
    if (1 << nb) != p.prototype_length:
        raise ValueError("prototype length must be a power of two")
    rb = p.rom_addr_bits
    pessimistic = options.pessimistic_widths
    acc_w = p.acc_width + (UNOPT_ACC_EXTRA if pessimistic else 0)
    naw = ab + (UNOPT_ADDR_EXTRA if pessimistic else 0)
    depth = p.buffer_depth

    prog = HlsProgram(
        "src_main_opt" if options == BehavioralOptions.optimized()
        else "src_main"
    )

    req = prog.input("req", 1)
    phase = prog.input("phase", pb)
    wr_ptr = prog.input("wr_ptr", ab)
    fill = prog.input("fill", fb)
    if options.handshake:
        gnt = prog.input("gnt", 1)

    prog.output("out_l", dw)
    prog.output("out_r", dw)
    prog.output("out_valid", 1, kind="pulse")
    prog.output("take", 1, kind="pulse")
    if options.handshake:
        prog.output("buf_req", 1, kind="pulse")

    prog.memory("buf_l", depth, dw, external_write=True)
    prog.memory("buf_r", depth, dw, external_write=True)
    prog.memory("rom", p.rom_depth, cw, contents=build_rom(p))

    ph = prog.var("ph", pb)
    np_ = prog.var("np", naw)
    fl = prog.var("fl", fb)
    t = prog.var("t", tb)
    caddr = prog.var("caddr", rb)
    coef = prog.var("coef", cw)
    s_l = prog.var("s_l", dw)
    s_r = prog.var("s_r", dw)
    g_l = prog.var("g_l", dw)
    g_r = prog.var("g_r", dw)
    acc_l = prog.var("acc_l", acc_w)
    acc_r = prog.var("acc_r", acc_w)
    junk_l = prog.var("junk_l", dw)
    junk_r = prog.var("junk_r", dw)
    if options.registered_temps:
        # redundant temporaries of the cut-and-paste refinement; the
        # extra cycle boundaries make them genuinely registered values
        ph_copy = prog.var("ph_copy", pb)
        caddr_copy = prog.var("caddr_copy", rb)
        rnd_l = prog.var("rnd_l", dw)
        rnd_r = prog.var("rnd_r", dw)

    addr_now = Slice(np_, ab - 1, 0)
    proto = Cat(t, Ref("ph_copy", pb) if options.registered_temps else ph)
    mirrored = Sub(Const(nb, p.prototype_length - 1), proto, width=nb)
    caddr_expr = Mux(proto.bit(nb - 1),
                     Slice(mirrored, rb - 1, 0),
                     Slice(proto, rb - 1, 0))
    gate = Ref("t", tb).zext(fb + 1).ult(Ref("fl", fb).zext(fb + 1))
    guard = UNOPT_MUL_GUARD if pessimistic else 0
    mac_l = Add(Ref("acc_l", acc_w),
                SMul(Ref("g_l", dw).sext(dw + guard),
                     Ref("coef", cw).sext(cw + guard)).sext(acc_w),
                width=acc_w)
    mac_r = Add(Ref("acc_r", acc_w),
                SMul(Ref("g_r", dw).sext(dw + guard),
                     Ref("coef", cw).sext(cw + guard)).sext(acc_w),
                width=acc_w)
    np_dec = Mux(addr_now.eq(Const(ab, 0)),
                 Const(naw, depth - 1),
                 Slice(Sub(np_, Const(naw, 1), width=naw), naw - 1, 0))

    loop_body = []
    if options.registered_temps:
        loop_body.append(Assign("caddr_copy", caddr_expr))
        loop_body.append(Assign("caddr", Ref("caddr_copy", rb)))
    else:
        loop_body.append(Assign("caddr", caddr_expr))
    if options.handshake:
        loop_body.append(PortWrite("buf_req", Const(1, 1)))
        loop_body.append(WaitUntil(Ref("gnt", 1)))
    loop_body += [
        MemReadStmt("coef", "rom", Ref("caddr", rb)),
        MemReadStmt("s_l", "buf_l", addr_now),
        MemReadStmt("s_r", "buf_r", addr_now),
        Assign("g_l", Mux(gate, Ref("s_l", dw), Const(dw, 0))),
        Assign("g_r", Mux(gate, Ref("s_r", dw), Const(dw, 0))),
        Assign("acc_l", mac_l),
        Assign("acc_r", mac_r),
        Assign("np", np_dec),
    ]

    normal_path = [
        Assign("acc_l", Const(acc_w, 0)),
        Assign("acc_r", Const(acc_w, 0)),
        For("t", taps, loop_body),
    ]
    if not options.registered_temps:
        normal_path += [
            PortWrite("out_l", round_saturate_expr(Ref("acc_l", acc_w), p)),
            PortWrite("out_r", round_saturate_expr(Ref("acc_r", acc_w), p)),
            PortWrite("out_valid", Const(1, 1)),
        ]
    else:
        normal_path += [
            # conservative refinement: rounded values land in registered
            # temporaries one cycle before they reach the output ports
            Assign("rnd_l",
                   round_saturate_expr(Ref("acc_l", acc_w), p)),
            Assign("rnd_r",
                   round_saturate_expr(Ref("acc_r", acc_w), p)),
            WaitCycle(),
            PortWrite("out_l", Ref("rnd_l", dw)),
            PortWrite("out_r", Ref("rnd_r", dw)),
            PortWrite("out_valid", Const(1, 1)),
        ]

    bug_path = [
        # Leftover prefetch: the address register still holds the flush
        # sentinel (== buffer_depth, one past the valid range).  The data
        # is discarded -- the early-out returns silence.
        MemReadStmt("junk_l", "buf_l", Const(ab, depth)),
        MemReadStmt("junk_r", "buf_r", Const(ab, depth)),
        PortWrite("out_l", Const(dw, 0)),
        PortWrite("out_r", Const(dw, 0)),
        PortWrite("out_valid", Const(1, 1)),
    ]

    snapshot = [
        Assign("ph", Ref("phase", pb)),
        Assign("np", Ref("wr_ptr", ab).zext(naw) if naw > ab
               else Ref("wr_ptr", ab)),
        Assign("fl", Ref("fill", fb)),
        PortWrite("take", Const(1, 1)),
    ]
    if options.registered_temps:
        snapshot.append(Assign("ph_copy", Ref("ph", pb)))

    prog.body = [
        WaitUntil(Ref("req", 1)),
        *snapshot,
        If(Ref("fl", fb).eq(Const(fb, 0)), bug_path, normal_path),
    ]
    prog.validate()
    return prog


def build_main_fsm(params: SrcParams, optimized=True) -> Fsm:
    """Build and schedule the main process FSM (shared by both the
    interpreted and compiled behavioural backends)."""
    options = _coerce_options(optimized)
    program = build_main_program(params, options)
    constraints = SchedulingConstraints(
        clock_ns=params.clock_period_ps / 1000.0,
        materialize_all_regs=not options.prune_dead_writes,
    )
    fsm = Scheduler(program, constraints).run()
    if options.prune_dead_writes:
        prune_dead_reg_writes(fsm)
    return fsm


@dataclass
class BehavioralDesign:
    """A fully built behavioural SRC: RTL module + metadata."""

    module: RtlModule
    program: HlsProgram
    fsm: Fsm
    binding: RegisterBinding
    generated: GeneratedFsm
    #: True when built from the optimised preset
    optimized: bool
    front_end: FrontEnd
    options: "BehavioralOptions" = None


def build_behavioral_design(params: SrcParams, optimized,
                            name: Optional[str] = None) -> BehavioralDesign:
    """Build the complete behavioural SRC as one flat RTL module.

    *optimized* is a bool preset or a :class:`BehavioralOptions`.
    """
    options = _coerce_options(optimized)
    is_opt_preset = options == BehavioralOptions.optimized()
    p = params
    module = RtlModule(
        name or ("src_beh_opt" if is_opt_preset else "src_beh")
    )
    fe_opts = FrontEndOptions(
        generic_modes=options.generic_modes or len(p.modes)
    )
    fe = FrontEnd(module, p, fe_opts)
    fe.declare()

    fsm = build_main_fsm(p, options)
    program = fsm.program
    binding = bind_registers(fsm, share=options.share_registers)

    inputs: Dict[str, Ref] = {
        "req": fe.out_req,
        "phase": fe.phase,
        "wr_ptr": fe.wr_ptr,
        "fill": fe.fill,
    }
    gnt_reg = None
    if options.handshake:
        gnt_reg = module.register("fe_gnt", 1, init=0)
        inputs["gnt"] = gnt_reg

    generated = generate_rtl(fsm, module, inputs, binding, prefix="main")

    if gnt_reg is not None:
        # buffer arbiter: grant one cycle after the request pulse
        module.set_next(gnt_reg, generated.outputs["buf_req"])

    fe.finish(
        take=generated.outputs["take"],
        buf_l=generated.memories["buf_l"],
        buf_r=generated.memories["buf_r"],
    )
    module.output("out_l", generated.outputs["out_l"])
    module.output("out_r", generated.outputs["out_r"])
    module.output("out_valid", generated.outputs["out_valid"])
    module.validate()
    return BehavioralDesign(
        module=module, program=program, fsm=fsm, binding=binding,
        generated=generated, optimized=is_opt_preset, front_end=fe,
        options=options,
    )


class BehavioralSimulation:
    """Behavioural simulation: FSM interpreter + front-end model.

    This is the "synthesisable behavioural SystemC" simulation of paper
    Figure 8: the main process executes its schedule state by state; the
    RTL front end (an I/O interface block) is mirrored behaviourally
    using the parameter helpers.  Bit-exact against the generated RTL.
    """

    def __init__(self, params: SrcParams, optimized=True,
                 mem_monitor: Optional[MemMonitor] = None,
                 fsm: Optional[Fsm] = None, backend: str = "interpreted"):
        self.params = params
        self.options = _coerce_options(optimized)
        self.optimized = self.options == BehavioralOptions.optimized()
        self._handshake = self.options.handshake
        if backend == "native":
            from ..native import resolve_backend
            backend = resolve_backend(backend)
        self.backend = backend
        if fsm is None:
            fsm = build_main_fsm(params, self.options)
        if backend == "interpreted":
            self.interp = FsmInterpreter(fsm, mem_monitor=mem_monitor)
        elif backend == "compiled":
            self.interp = CompiledFsm(fsm, mem_monitor=mem_monitor)
        elif backend == "vectorized":
            self.interp = VectorizedFsm(fsm, mem_monitor=mem_monitor)
        elif backend == "native":
            from ..hls.native import NativeFsm
            self.interp = NativeFsm(fsm, mem_monitor=mem_monitor)
        else:
            raise ValueError(
                f"unknown behavioural backend {backend!r} (expected "
                "'interpreted', 'compiled', 'vectorized' or 'native')")
        # front-end state
        self.mode = 0
        self.wr_ptr = params.buffer_depth - 1
        self.fill = 0
        self.pos = 0
        self._gnt = 0
        # pending per-cycle stimulus
        self._in_frame: Optional[Tuple[int, int]] = None
        self._cfg: Optional[int] = None
        self._req = 0

    # -- stimulus ----------------------------------------------------------
    def drive_input(self, left: int, right: int) -> None:
        self._in_frame = (left, right)

    def drive_cfg(self, mode: int) -> None:
        self._cfg = mode

    def drive_req(self) -> None:
        self._req = 1

    # -- one clock cycle -----------------------------------------------------
    def step(self) -> Optional[Tuple[int, int]]:
        """Advance one cycle; returns an output frame when valid pulses."""
        p = self.params
        interp = self.interp
        # combinational phase preview for the main process
        pos_after = p.pos_after_output(self.pos, self.mode)
        interp.set_input("req", self._req)
        interp.set_input("phase", p.phase_from_pos(pos_after))
        interp.set_input("wr_ptr", self.wr_ptr)
        interp.set_input("fill", self.fill)
        if self._handshake:
            interp.set_input("gnt", self._gnt)
        # register values *during* this cycle (pre-edge), as the RTL
        # front end samples them
        take = interp.get_output("take")
        buf_req_now = (interp.get_output("buf_req")
                       if self._handshake else 0)
        interp.step()
        # front-end sequential update (mirrors FrontEnd.finish)
        if self._cfg is not None:
            self.mode = self._cfg
            self.wr_ptr = p.buffer_depth - 1
            self.fill = 0
            self.pos = 0
        else:
            if take:
                self.pos = p.pos_after_output(self.pos, self.mode)
            if self._in_frame is not None:
                self.wr_ptr = (self.wr_ptr + 1) % p.buffer_depth
                left, right = self._in_frame
                interp.write_memory("buf_l", self.wr_ptr, left)
                interp.write_memory("buf_r", self.wr_ptr, right)
                self.fill = min(self.fill + 1, p.taps_per_phase)
                self.pos = p.pos_after_input(self.pos)
        if self._handshake:
            self._gnt = buf_req_now
        self._in_frame = None
        self._cfg = None
        self._req = 0
        if interp.get_output("out_valid"):
            return (interp.get_output("out_l"), interp.get_output("out_r"))
        return None


class BehavioralBatchSimulation:
    """N independent behavioural SRC instances advanced in lock-step.

    Built on :class:`CompiledFsmBatch`: one compiled FSM program, N
    private environments/memories, plus an N-wide mirror of the
    front-end state.  Stimulus (``drive_input`` / ``drive_cfg`` /
    ``drive_req``) is broadcast to every pattern -- the fault-injection
    campaign uses this to run one fault-free golden pattern alongside
    N-1 faulty patterns under a common workload, with faults poked into
    individual patterns via ``batch.envs[i]``.

    ``step()`` returns one ``Optional[(left, right)]`` frame per
    pattern.
    """

    def __init__(self, params: SrcParams, n_patterns: int, optimized=True,
                 fsm: Optional[Fsm] = None, backend: str = "compiled"):
        self.params = params
        self.options = _coerce_options(optimized)
        self.optimized = self.options == BehavioralOptions.optimized()
        self._handshake = self.options.handshake
        if backend == "native":
            from ..native import resolve_backend
            backend = resolve_backend(backend)
        self.backend = backend
        if fsm is None:
            fsm = build_main_fsm(params, self.options)
        if backend == "compiled":
            self.batch = CompiledFsmBatch(fsm, n_patterns)
        elif backend == "vectorized":
            self.batch = VectorizedFsmBatch(fsm, n_patterns)
        elif backend == "native":
            from ..hls.native import NativeFsmBatch
            self.batch = NativeFsmBatch(fsm, n_patterns)
        else:
            raise ValueError(
                f"unknown behavioural batch backend {backend!r} "
                "(expected 'compiled', 'vectorized' or 'native')")
        self.n_patterns = n_patterns
        n = n_patterns
        if backend == "vectorized":
            import numpy as np

            # lane-parallel front-end mirror.  mode / wr_ptr / fill stay
            # scalars: every update that touches them is broadcast
            # (drive_cfg / drive_input), so they can never diverge
            # across lanes; only pos (via the FSM's take pulse) and the
            # handshake grant are fed back from per-lane FSM outputs.
            self.mode = 0
            self.wr_ptr = params.buffer_depth - 1
            self.fill = 0
            self.pos = np.zeros(n, dtype=np.int64)
            self._gnt = np.zeros(n, dtype=np.uint64)
            self._inc = [params.position_increment(m)
                         for m in range(len(params.modes))]
            self._pos_mask = (1 << params.pos_width) - 1
            self._pos_half = 1 << (params.pos_width - 1)
        else:
            # per-pattern front-end mirror (faults make patterns diverge)
            self.mode = [0] * n
            self.wr_ptr = [params.buffer_depth - 1] * n
            self.fill = [0] * n
            self.pos = [0] * n
            self._gnt = [0] * n
        # pending broadcast stimulus
        self._in_frame: Optional[Tuple[int, int]] = None
        self._cfg: Optional[int] = None
        self._req = 0

    # -- stimulus (broadcast to every pattern) -------------------------
    def drive_input(self, left: int, right: int) -> None:
        self._in_frame = (left, right)

    def drive_cfg(self, mode: int) -> None:
        self._cfg = mode

    def drive_req(self) -> None:
        self._req = 1

    # -- one clock cycle ----------------------------------------------
    def step(self) -> List[Optional[Tuple[int, int]]]:
        """Advance all patterns one cycle; per-pattern output frames."""
        if self.backend == "vectorized":
            return self._step_vectorized()
        p = self.params
        batch = self.batch
        n = self.n_patterns
        pos_after = [p.pos_after_output(self.pos[i], self.mode[i])
                     for i in range(n)]
        batch.set_input("req", self._req)
        batch.set_input_patterns(
            "phase", [p.phase_from_pos(pa) for pa in pos_after])
        batch.set_input_patterns("wr_ptr", self.wr_ptr)
        batch.set_input_patterns("fill", self.fill)
        if self._handshake:
            batch.set_input_patterns("gnt", self._gnt)
        take = batch.get_output_patterns("take")
        buf_req_now = (batch.get_output_patterns("buf_req")
                       if self._handshake else None)
        batch.step()
        # front-end sequential update (mirrors BehavioralSimulation.step)
        for i in range(n):
            if self._cfg is not None:
                self.mode[i] = self._cfg
                self.wr_ptr[i] = p.buffer_depth - 1
                self.fill[i] = 0
                self.pos[i] = 0
            else:
                if take[i]:
                    self.pos[i] = p.pos_after_output(self.pos[i],
                                                     self.mode[i])
                if self._in_frame is not None:
                    self.wr_ptr[i] = (self.wr_ptr[i] + 1) % p.buffer_depth
                    left, right = self._in_frame
                    batch.write_memory(i, "buf_l", self.wr_ptr[i], left)
                    batch.write_memory(i, "buf_r", self.wr_ptr[i], right)
                    self.fill[i] = min(self.fill[i] + 1, p.taps_per_phase)
                    self.pos[i] = p.pos_after_input(self.pos[i])
            if self._handshake:
                self._gnt[i] = buf_req_now[i]
        self._in_frame = None
        self._cfg = None
        self._req = 0
        out_valid = batch.get_output_patterns("out_valid")
        out_l = batch.get_output_patterns("out_l")
        out_r = batch.get_output_patterns("out_r")
        return [(out_l[i], out_r[i]) if out_valid[i] else None
                for i in range(n)]

    def _step_vectorized(self) -> List[Optional[Tuple[int, int]]]:
        """Lane-parallel mirror of :meth:`step` (same semantics)."""
        import numpy as np

        p = self.params
        batch = self.batch
        n = self.n_patterns
        half, m = self._pos_half, self._pos_mask
        # combinational phase preview (wrapping two's-complement add)
        pos_after = ((self.pos + self._inc[self.mode] + half) & m) - half
        clamped = np.clip(pos_after, 0, p.one_sample_units - 1)
        batch.set_input("req", self._req)
        batch.set_input_patterns(
            "phase", (clamped >> p.phase_frac_bits).astype(np.uint64))
        batch.set_input("wr_ptr", self.wr_ptr)
        batch.set_input("fill", self.fill)
        if self._handshake:
            batch.set_input_patterns("gnt", self._gnt)
        take = batch.output_array("take").copy()
        buf_req_now = (batch.output_array("buf_req").copy()
                       if self._handshake else None)
        batch.step()
        # front-end sequential update (mirrors BehavioralSimulation.step)
        if self._cfg is not None:
            self.mode = self._cfg
            self.wr_ptr = p.buffer_depth - 1
            self.fill = 0
            self.pos = np.zeros(n, dtype=np.int64)
        else:
            self.pos = np.where(take != 0, pos_after, self.pos)
            if self._in_frame is not None:
                self.wr_ptr = (self.wr_ptr + 1) % p.buffer_depth
                left, right = self._in_frame
                batch.write_memory_all("buf_l", self.wr_ptr, left)
                batch.write_memory_all("buf_r", self.wr_ptr, right)
                self.fill = min(self.fill + 1, p.taps_per_phase)
                self.pos = ((self.pos - p.one_sample_units + half) & m) \
                    - half
        if self._handshake:
            self._gnt = buf_req_now
        self._in_frame = None
        self._cfg = None
        self._req = 0
        valid = batch.output_array("out_valid")
        if not valid.any():
            return [None] * n
        out_l = batch.output_array("out_l")
        out_r = batch.output_array("out_r")
        return [(int(out_l[i]), int(out_r[i])) if valid[i] else None
                for i in range(n)]
