"""Shared RTL front end of every synthesisable SRC implementation.

The paper's behavioural design "already contained RT-level modules",
notably the I/O interfaces (Section 4.3).  We factor them here so the
behavioural, RTL and reference designs all use the same stream-facing
logic:

* **input interface** -- write pointer, saturating fill counter and the
  sample-buffer write ports ("virtual flush": a mode change resets the
  fill counter instead of spending cycles zeroing the RAM; the MAC gates
  not-yet-valid slots to zero, which is value-identical to the golden
  model's zeroed buffer);
* **position tracker** -- the wrapping position register (see
  :mod:`repro.src_design.params`), its mode-selected increment table and
  the combinational *phase preview* (position after the pending output's
  increment, clamped into one sample and truncated to the branch index).

Because the main process produces the ``take`` pulse, construction is
two-phase: :meth:`FrontEnd.declare` creates ports and registers before
the main process is generated, :meth:`FrontEnd.finish` closes the
register next-value logic once the ``take`` net exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..rtl.expr import Case, Cat, Const, Expr, Ext, Mux, Ref, Slice
from ..rtl.ir import RtlMemory, RtlModule
from .params import SrcParams


@dataclass
class FrontEndOptions:
    """Front-end generality knobs (paper Section 4.4, "Generality").

    ``generic_modes`` sizes the mode decode: the generic C++-derived code
    kept the mode word and increment table sized for *eight* modes even
    though only two exist; the optimisation folds it down to the two real
    ones ("the template mechanism was replaced by #define directives").
    """

    generic_modes: int = 2

    @property
    def mode_bits(self) -> int:
        return max(1, (self.generic_modes - 1).bit_length())


class FrontEnd:
    """Input interface + position tracker emitted into an RtlModule."""

    def __init__(self, module: RtlModule, params: SrcParams,
                 options: Optional[FrontEndOptions] = None,
                 stream_inputs: Optional[Dict[str, Expr]] = None):
        """*stream_inputs* optionally replaces the parallel stream ports
        (``in_valid``/``in_l``/``in_r``) by existing nets -- used when a
        serial receiver block feeds the front end instead of top-level
        pins."""
        self.module = module
        self.params = params
        self.options = options or FrontEndOptions()
        self.stream_inputs = stream_inputs
        if self.options.generic_modes < len(params.modes):
            raise ValueError("generic_modes below the real mode count")
        self.declared = False
        self.finished = False

    # ------------------------------------------------------------------
    def declare(self) -> None:
        """Create top-level ports and front-end registers/nets."""
        m = self.module
        p = self.params
        opt = self.options
        mw = opt.mode_bits

        # stream-facing ports (or injected nets from a receiver block)
        if self.stream_inputs is None:
            self.in_valid = m.input("in_valid", 1)
            self.in_l = m.input("in_l", p.data_width)
            self.in_r = m.input("in_r", p.data_width)
        else:
            self.in_valid = self.stream_inputs["in_valid"]
            self.in_l = self.stream_inputs["in_l"]
            self.in_r = self.stream_inputs["in_r"]
        self.cfg_valid = m.input("cfg_valid", 1)
        self.cfg_mode = m.input("cfg_mode", mw)
        self.out_req = m.input("out_req", 1)

        # registers
        ab = p.addr_bits
        fb = max(1, p.taps_per_phase.bit_length())
        pw = p.pos_width
        self.mode = m.register("fe_mode", mw, init=0)
        self.wr_ptr = m.register("fe_wr_ptr", ab, init=p.buffer_depth - 1)
        self.fill = m.register("fe_fill", fb, init=0)
        self.pos = m.register("fe_pos", pw, init=0)
        self.fill_bits = fb

        # write-pointer increment (wraps at buffer_depth, NOT a power of 2)
        wrap = self.wr_ptr.eq(Const(ab, p.buffer_depth - 1))
        inc_ptr = Slice(self.wr_ptr + Const(ab, 1), ab - 1, 0)
        self.wr_next = m.assign(
            "fe_wr_next", Mux(wrap, Const(ab, 0), inc_ptr)
        )

        # mode-selected position increment (generic table: unused mode
        # codes still decode -- the "generality" cost of the unoptimised
        # design)
        incs: Dict[int, Expr] = {}
        for i in range(opt.generic_modes):
            real = i % len(p.modes)
            incs[i] = Const(pw, p.position_increment(real))
        self.inc_sel = m.assign(
            "fe_inc", Case(self.mode, incs, default=Const(pw, 0))
        )

        # phase preview: clamp(pos + inc) -> branch index
        one_sample = p.one_sample_units
        pos_after = m.assign(
            "fe_pos_after",
            Slice(self.pos + self.inc_sel, pw - 1, 0),
        )
        negative = pos_after.bit(pw - 1)
        too_big = pos_after.sge(Const(pw, one_sample))
        phase_raw = Slice(pos_after,
                          p.phase_frac_bits + p.phase_index_bits - 1,
                          p.phase_frac_bits)
        self.phase = m.assign(
            "fe_phase",
            Mux(negative, Const(p.phase_index_bits, 0),
                Mux(too_big, Const(p.phase_index_bits, p.n_phases - 1),
                    phase_raw)),
        )
        self.declared = True

    # ------------------------------------------------------------------
    def finish(self, take: Ref, buf_l: RtlMemory, buf_r: RtlMemory) -> None:
        """Close register updates; attach buffer write ports.

        *take* is the main process's pulse committing one output's
        position increment.  *buf_l*/*buf_r* are the sample memories the
        main process reads (it created them; the front end writes them).
        """
        if not self.declared:
            raise RuntimeError("declare() must run before finish()")
        m = self.module
        p = self.params
        ab = p.addr_bits
        fb = self.fill_bits
        pw = p.pos_width
        taps = p.taps_per_phase

        m.set_next(self.mode, Mux(self.cfg_valid, self.cfg_mode, self.mode))
        m.set_next(
            self.wr_ptr,
            Mux(self.cfg_valid, Const(ab, p.buffer_depth - 1),
                Mux(self.in_valid, self.wr_next, self.wr_ptr)),
        )
        fill_inc = Mux(
            self.fill.eq(Const(fb, taps)),
            self.fill,
            Slice(self.fill + Const(fb, 1), fb - 1, 0),
        )
        m.set_next(
            self.fill,
            Mux(self.cfg_valid, Const(fb, 0),
                Mux(self.in_valid, fill_inc, self.fill)),
        )

        # pos: wrapping add of (take ? +inc) and (in_valid ? -one_sample)
        one = Const(pw, p.one_sample_units)
        plus = Mux(take, self.inc_sel, Const(pw, 0))
        minus = Mux(self.in_valid, one, Const(pw, 0))
        stepped = Slice(
            (Slice(self.pos + plus, pw - 1, 0) - minus), pw - 1, 0
        )
        m.set_next(
            self.pos, Mux(self.cfg_valid, Const(pw, 0), stepped)
        )

        # sample-buffer write ports (the new sample lands at wr_next)
        m.mem_write(buf_l, self.in_valid, self.wr_next, self.in_l)
        m.mem_write(buf_r, self.in_valid, self.wr_next, self.in_r)
        self.finished = True
