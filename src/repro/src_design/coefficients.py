"""Coefficient ROM of the SRC (paper Section 3).

The ROM stores only *one half* of the symmetric prototype impulse
response; the polyphase-filter iterator hides both the polyphase storage
order and the mirroring (paper Section 4.1).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

import math

from ..datatypes.integers import max_signed, min_signed
from ..dsp.filter_design import PrototypeSpec, design_prototype
from ..dsp.polyphase import stored_index
from .params import SrcParams


@lru_cache(maxsize=8)
def _rom_for(params: SrcParams) -> Tuple[int, ...]:
    spec = PrototypeSpec(
        n_phases=params.n_phases,
        taps_per_phase=params.taps_per_phase,
        cutoff=params.cutoff,
        beta=params.kaiser_beta,
    )
    prototype = design_prototype(spec)
    # Quantise with exactly params.coef_frac_bits fractional bits so the
    # output scaling of round_and_saturate matches the ROM contents.
    scale = 1 << params.coef_frac_bits
    lo = min_signed(params.coef_width)
    hi = max_signed(params.coef_width)
    quantised = [
        min(max(int(math.floor(c * scale + 0.5)), lo), hi)
        for c in prototype
    ]
    # Force exact symmetry after quantisation so half-storage is lossless.
    n = len(quantised)
    for i in range(n // 2):
        quantised[n - 1 - i] = quantised[i]
    return tuple(quantised[: n // 2])


def build_rom(params: SrcParams) -> List[int]:
    """Quantised first half of the prototype, as signed integers."""
    return list(_rom_for(params))


def rom_address(params: SrcParams, phase: int, tap: int) -> int:
    """ROM address of coefficient *tap* of polyphase branch *phase*.

    Applies both the polyphase interleave (``phase + tap * L``) and the
    symmetric mirroring onto the stored half.
    """
    if not 0 <= phase < params.n_phases:
        raise ValueError(f"phase {phase} out of range")
    if not 0 <= tap < params.taps_per_phase:
        raise ValueError(f"tap {tap} out of range")
    proto_index = phase + tap * params.n_phases
    return stored_index(proto_index, params.prototype_length)


def coefficient(params: SrcParams, phase: int, tap: int) -> int:
    """Quantised coefficient for (*phase*, *tap*)."""
    return build_rom(params)[rom_address(params, phase, tap)]


def full_prototype(params: SrcParams) -> List[int]:
    """The complete (mirror-expanded) quantised prototype."""
    half = build_rom(params)
    return half + half[::-1]


class PolyphaseCoefficientIterator:
    """Iterator over one branch's coefficients (paper Figure 3).

    Hides the storage order and the half-storage mirroring, exactly like
    the C++ ``CPolyphaseFilter`` iterator.  Iteration yields
    ``taps_per_phase`` quantised coefficients for the configured phase.
    """

    def __init__(self, params: SrcParams, phase: int):
        self._params = params
        self._phase = phase
        self._tap = 0
        self._rom = build_rom(params)

    def __iter__(self) -> "PolyphaseCoefficientIterator":
        return self

    def __next__(self) -> int:
        if self._tap >= self._params.taps_per_phase:
            raise StopIteration
        value = self._rom[rom_address(self._params, self._phase, self._tap)]
        self._tap += 1
        return value
