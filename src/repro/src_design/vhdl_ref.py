"""The series-production VHDL reference implementation of the SRC.

The paper's reference design "was created with the conventional flow of
manually recoding the given C specification in RTL VHDL"; its
architecture was therefore *frozen by the low-level C specification*
(paper Section 5.2): the per-channel processing order of the C loops,
the C code's integer guard bits, and its double-buffered outputs all
carried straight into the VHDL.  Concretely:

* **channel-major schedule** -- process the left channel completely
  (MAC loop + rounding), then the right channel, like the C code's
  ``for channel: for tap:`` nest; separate address registers, tap
  counters and phase copies per channel;
* **pessimistic widths** -- multiplier operands carry the C code's two
  guard bits each; accumulators are eight bits wider than necessary
  (the C code used a wider integer type);
* **double-buffered outputs** -- rounded values land in per-channel
  temporaries before being copied to the output registers.

The model is bit-exact with the golden model (the guard bits never
change results); only its cost differs.  It also reproduces the
golden-model bug -- the reference design was recoded from the same C
specification, so the invalid prefetch exists here too (the paper found
the bug to be a golden-model bug, present in every implementation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..rtl.expr import Case, Cat, Const, Expr, Mux, Ref, Slice, SMul, Sub
from ..rtl.ir import RtlModule
from .behavioral import round_saturate_expr
from .coefficients import build_rom
from .io_interfaces import FrontEnd, FrontEndOptions
from .params import SrcParams

# FSM state encoding (channel-major, as the C loops dictate)
V_IDLE = 0
V_TAKE = 1
V_BUG = 2
V_MAC_L = 3
V_RND_L = 4
V_MAC_R = 5
V_RND_R = 6
V_DONE = 7

#: guard bits the C specification carried on each multiplier operand
GUARD_BITS = 2
#: accumulator over-width of the C integer type
ACC_EXTRA = 8


@dataclass
class VhdlReferenceDesign:
    module: RtlModule


def build_vhdl_reference(params: SrcParams,
                         name: Optional[str] = None) -> VhdlReferenceDesign:
    """Build the VHDL reference SRC as one flat RTL module."""
    p = params
    dw = p.data_width
    cw = p.coef_width
    ab = p.addr_bits
    fb = max(1, p.taps_per_phase.bit_length())
    pb = p.phase_index_bits
    taps = p.taps_per_phase
    tb = max(1, (taps - 1).bit_length())
    nb = pb + tb
    rb = p.rom_addr_bits
    acc_w = p.acc_width + ACC_EXTRA
    depth = p.buffer_depth

    m = RtlModule(name or "src_vhdl_ref")
    fe = FrontEnd(m, p, FrontEndOptions(generic_modes=len(p.modes)))
    fe.declare()

    sb = 3
    state = m.register("state", sb, init=V_IDLE)
    fl_s = m.register("fl_s", fb)
    take = m.register("take_r", 1)
    out_valid = m.register("out_valid_r", 1)
    # per-channel duplicated state (the C code kept separate variables)
    ph_l = m.register("ph_l", pb)
    ph_r = m.register("ph_r", pb)
    np_l = m.register("np_l", ab)
    np_r = m.register("np_r", ab)
    tap_l = m.register("tap_l", tb)
    tap_r = m.register("tap_r", tb)
    acc_l = m.register("acc_l", acc_w)
    acc_r = m.register("acc_r", acc_w)
    rnd_l = m.register("rnd_l", dw)
    rnd_r = m.register("rnd_r", dw)
    out_l_r = m.register("out_l_r", dw)
    out_r_r = m.register("out_r_r", dw)

    buf_l = m.memory("buf_l", depth, dw)
    buf_r = m.memory("buf_r", depth, dw)
    rom = m.memory("rom", p.rom_depth, cw, contents=build_rom(p))

    in_mac_l = state.eq(Const(sb, V_MAC_L))
    in_mac_r = state.eq(Const(sb, V_MAC_R))
    in_bug = state.eq(Const(sb, V_BUG))

    # per-channel coefficient addressing (duplicated mirror logic)
    def coef_addr(tap_reg: Ref, ph_reg: Ref, tag: str) -> Ref:
        proto = Cat(tap_reg, ph_reg)
        mirrored = Sub(Const(nb, p.prototype_length - 1), proto, width=nb)
        return m.assign(
            f"caddr_{tag}",
            Mux(proto.bit(nb - 1), Slice(mirrored, rb - 1, 0),
                Slice(proto, rb - 1, 0)),
        )

    caddr_l = coef_addr(tap_l, ph_l, "l")
    caddr_r = coef_addr(tap_r, ph_r, "r")
    rom_addr = m.assign("rom_addr",
                        Mux(in_mac_r, caddr_r, caddr_l))
    rom_en = m.assign("rom_en", in_mac_l | in_mac_r)
    coef = m.mem_read(rom, rom_addr, enable=rom_en)

    addr_l = m.assign("rd_addr_l",
                      Mux(in_bug, Const(ab, depth), np_l))
    addr_r = m.assign("rd_addr_r",
                      Mux(in_bug, Const(ab, depth), np_r))
    en_l = m.assign("rd_en_l", in_mac_l | in_bug)
    en_r = m.assign("rd_en_r", in_mac_r | in_bug)
    data_l = m.mem_read(buf_l, addr_l, enable=en_l)
    data_r = m.mem_read(buf_r, addr_r, enable=en_r)

    # guarded (over-wide) multiplier, shared between the channel loops
    gate_l = tap_l.zext(fb + 1).ult(fl_s.zext(fb + 1))
    gate_r = tap_r.zext(fb + 1).ult(fl_s.zext(fb + 1))
    gated_l = Mux(gate_l, data_l, Const(dw, 0))
    gated_r = Mux(gate_r, data_r, Const(dw, 0))
    mul_a = m.assign(
        "mul_a",
        Mux(in_mac_r, gated_r, gated_l).sext(dw + GUARD_BITS),
    )
    mul_b = m.assign("mul_b", coef.sext(cw + GUARD_BITS))
    prod = m.assign("prod", SMul(mul_a, mul_b))
    mac_l = m.assign("mac_l",
                     (acc_l + prod.sext(acc_w)).slice(acc_w - 1, 0))
    mac_r = m.assign("mac_r",
                     (acc_r + prod.sext(acc_w)).slice(acc_w - 1, 0))

    def dec_addr(reg: Ref) -> Expr:
        return Mux(reg.eq(Const(ab, 0)), Const(ab, depth - 1),
                   Slice(Sub(reg, Const(ab, 1), width=ab), ab - 1, 0))

    last_l = tap_l.eq(Const(tb, taps - 1))
    last_r = tap_r.eq(Const(tb, taps - 1))

    m.set_next(state, Case(state, {
        V_IDLE: Mux(fe.out_req, Const(sb, V_TAKE), Const(sb, V_IDLE)),
        V_TAKE: Mux(fe.fill.eq(Const(fe.fill_bits, 0)),
                    Const(sb, V_BUG), Const(sb, V_MAC_L)),
        V_BUG: Const(sb, V_IDLE),
        V_MAC_L: Mux(last_l, Const(sb, V_RND_L), Const(sb, V_MAC_L)),
        V_RND_L: Const(sb, V_MAC_R),
        V_MAC_R: Mux(last_r, Const(sb, V_RND_R), Const(sb, V_MAC_R)),
        V_RND_R: Const(sb, V_DONE),
        V_DONE: Const(sb, V_IDLE),
    }, default=Const(sb, V_IDLE)))

    m.set_next(fl_s, Case(state, {V_TAKE: fe.fill}, default=fl_s))
    m.set_next(take, Case(state, {V_TAKE: Const(1, 1)},
                          default=Const(1, 0)))
    m.set_next(ph_l, Case(state, {V_TAKE: fe.phase}, default=ph_l))
    m.set_next(ph_r, Case(state, {V_TAKE: fe.phase}, default=ph_r))
    m.set_next(np_l, Case(state, {
        V_TAKE: fe.wr_ptr,
        V_MAC_L: dec_addr(np_l),
    }, default=np_l))
    m.set_next(np_r, Case(state, {
        V_TAKE: fe.wr_ptr,
        V_MAC_R: dec_addr(np_r),
    }, default=np_r))
    m.set_next(tap_l, Case(state, {
        V_TAKE: Const(tb, 0),
        V_MAC_L: Slice(tap_l + Const(tb, 1), tb - 1, 0),
    }, default=tap_l))
    m.set_next(tap_r, Case(state, {
        V_TAKE: Const(tb, 0),
        V_MAC_R: Slice(tap_r + Const(tb, 1), tb - 1, 0),
    }, default=tap_r))
    m.set_next(acc_l, Case(state, {
        V_TAKE: Const(acc_w, 0),
        V_MAC_L: mac_l,
    }, default=acc_l))
    m.set_next(acc_r, Case(state, {
        V_TAKE: Const(acc_w, 0),
        V_MAC_R: mac_r,
    }, default=acc_r))
    m.set_next(rnd_l, Case(state, {
        V_RND_L: round_saturate_expr(acc_l, p),
    }, default=rnd_l))
    m.set_next(rnd_r, Case(state, {
        V_RND_R: round_saturate_expr(acc_r, p),
    }, default=rnd_r))
    m.set_next(out_l_r, Case(state, {
        V_BUG: Const(dw, 0),
        V_DONE: rnd_l,
    }, default=out_l_r))
    m.set_next(out_r_r, Case(state, {
        V_BUG: Const(dw, 0),
        V_DONE: rnd_r,
    }, default=out_r_r))
    m.set_next(out_valid, Case(state, {
        V_BUG: Const(1, 1),
        V_DONE: Const(1, 1),
    }, default=Const(1, 0)))

    m.output("out_l", out_l_r)
    m.output("out_r", out_r_r)
    m.output("out_valid", out_valid)
    fe.finish(take=take, buf_l=buf_l, buf_r=buf_r)
    m.validate()
    return VhdlReferenceDesign(module=m)
