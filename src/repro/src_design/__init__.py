"""The sample-rate converter at every abstraction level of the flow.

* :mod:`params` / :mod:`coefficients` / :mod:`schedule` -- the bit-exact
  design contract shared by all levels;
* :mod:`algorithmic` -- the C++ golden model (paper Section 4.1);
* :mod:`tlm` -- SystemC 2.0 with channels (Section 4.2);
* :mod:`behavioral` -- synthesisable behavioural, unoptimised and
  optimised (Sections 4.3/4.4);
* :mod:`rtl_design` -- hand-written RTL, unoptimised and optimised
  (Sections 4.5/4.6);
* :mod:`vhdl_ref` -- the series-production VHDL reference;
* :mod:`io_interfaces` -- the shared RTL front end;
* :mod:`testbench` -- TLM and clocked testbenches.
"""

from .algorithmic import (AlgorithmicSrc, InputBuffer, PolyphaseFilter,
                          RingReadIterator, filter_sample)
from .behavioral import (BehavioralDesign, BehavioralOptions,
                         BehavioralSimulation, build_behavioral_design,
                         build_main_program, round_saturate_expr)
from .coefficients import (PolyphaseCoefficientIterator, build_rom,
                           coefficient, full_prototype, rom_address)
from .interfaces import SampleReadIF, SampleWriteIF, SrcCtrlIF
from .io_interfaces import FrontEnd, FrontEndOptions
from .params import PAPER_PARAMS, SMALL_PARAMS, SrcMode, SrcParams
from .rtl_design import RtlDesign, build_rtl_design
from .schedule import (KIND_IN, KIND_MODE, KIND_OUT, SampleEvent,
                       count_outputs, make_schedule, schedule_clock_ticks)
from .serial_io import (SerialLink, add_serial_receiver,
                        add_serial_transmitter,
                        build_serial_receiver_module, build_serial_src,
                        build_serial_transmitter_module)
from .testbench import (BehavioralDutDriver, RtlDutDriver, TlmTestbench,
                        run_clocked, run_tlm)
from .tlm import SrcChannelMonolithic, SrcChannelRefined
from .vhdl_ref import VhdlReferenceDesign, build_vhdl_reference

__all__ = [
    "AlgorithmicSrc", "BehavioralDesign", "BehavioralDutDriver",
    "BehavioralOptions",
    "BehavioralSimulation", "FrontEnd", "FrontEndOptions", "InputBuffer",
    "KIND_IN", "KIND_MODE", "KIND_OUT", "PAPER_PARAMS",
    "PolyphaseCoefficientIterator", "PolyphaseFilter", "RingReadIterator",
    "RtlDesign", "RtlDutDriver", "SMALL_PARAMS", "SampleEvent",
    "SampleReadIF", "SampleWriteIF", "SerialLink", "SrcChannelMonolithic",
    "SrcChannelRefined", "SrcCtrlIF", "SrcMode", "SrcParams",
    "TlmTestbench", "VhdlReferenceDesign", "build_behavioral_design",
    "build_main_program", "build_rom", "build_rtl_design",
    "build_vhdl_reference", "coefficient", "count_outputs",
    "filter_sample", "full_prototype", "make_schedule", "rom_address",
    "round_saturate_expr", "run_clocked", "run_tlm",
    "schedule_clock_ticks",
]
