"""Configuration of the sample-rate converter design.

A single :class:`SrcParams` instance defines the *bit-exact contract*
shared by every abstraction level of the refinement flow: data and
coefficient widths, the phase-accumulator geometry, buffer depth, the
operation-mode table (conversion ratios), and output rounding/saturation.
Two stock configurations are provided:

* :data:`PAPER_PARAMS` -- the paper-scale design (64 polyphase branches,
  16-bit stereo audio, 25 MHz clock / 40 ns timing constraint);
* :data:`SMALL_PARAMS` -- a reduced configuration for fast unit tests and
  gate-level simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Tuple

from ..datatypes.integers import (bits_for_unsigned, saturate_signed,
                                  wrap_signed)
from ..kernel.simtime import NS, period_ps, to_ps


@dataclass(frozen=True)
class SrcMode:
    """One operation mode: a conversion between two fixed sample rates."""

    name: str
    f_in: int
    f_out: int

    @property
    def ratio(self) -> Fraction:
        """Input samples per output sample."""
        return Fraction(self.f_in, self.f_out)


@dataclass(frozen=True)
class SrcParams:
    """All architectural parameters of the SRC design."""

    #: number of polyphase branches (interpolation factor L)
    n_phases: int = 64
    #: taps per polyphase branch
    taps_per_phase: int = 8
    #: audio sample width in bits (signed)
    data_width: int = 16
    #: coefficient width in bits (signed)
    coef_width: int = 16
    #: fractional bits of the phase accumulator below the phase index
    phase_frac_bits: int = 16
    #: input ring-buffer depth per channel (NOT a power of two, as in the
    #: original design; valid addresses are 0 .. buffer_depth-1)
    buffer_depth: int = 12
    #: number of audio channels (stereo)
    n_channels: int = 2
    #: system clock period in picoseconds (paper: 40 ns / 25 MHz)
    clock_period_ps: int = 40 * NS
    #: prototype-filter design parameters
    cutoff: float = 0.9
    kaiser_beta: float = 9.0
    #: operation modes, index -> mode (index is the SRC_CTRL mode word)
    modes: Tuple[SrcMode, ...] = (
        SrcMode("44k1_to_48k", 44_100, 48_000),
        SrcMode("48k_to_44k1", 48_000, 44_100),
    )

    def __post_init__(self):
        if self.n_phases & (self.n_phases - 1):
            raise ValueError(
                f"n_phases must be a power of two, got {self.n_phases}"
            )
        if self.buffer_depth <= self.taps_per_phase:
            raise ValueError(
                "buffer_depth must exceed taps_per_phase "
                f"({self.buffer_depth} <= {self.taps_per_phase})"
            )
        if (self.n_phases * self.taps_per_phase) % 2:
            raise ValueError("prototype length must be even for half storage")

    # ------------------------------------------------------------------
    # derived widths
    # ------------------------------------------------------------------
    @property
    def phase_index_bits(self) -> int:
        """Bits of the polyphase branch index."""
        return self.n_phases.bit_length() - 1

    @property
    def phase_acc_bits(self) -> int:
        """Total width of the phase accumulator (index + fraction)."""
        return self.phase_index_bits + self.phase_frac_bits

    @property
    def acc_width(self) -> int:
        """Minimum accumulator width for the MAC: full product plus the
        growth of ``taps_per_phase`` additions, plus sign."""
        growth = bits_for_unsigned(self.taps_per_phase - 1) if \
            self.taps_per_phase > 1 else 0
        return self.data_width + self.coef_width + growth

    @property
    def addr_bits(self) -> int:
        """Buffer address width; one extra code (== buffer_depth) exists
        but is *invalid* -- the seed of the paper's golden-model bug."""
        return bits_for_unsigned(self.buffer_depth)

    @property
    def rom_depth(self) -> int:
        """Stored coefficients: half of the symmetric prototype."""
        return (self.n_phases * self.taps_per_phase) // 2

    @property
    def rom_addr_bits(self) -> int:
        return bits_for_unsigned(self.rom_depth - 1)

    @property
    def mode_bits(self) -> int:
        return max(1, bits_for_unsigned(len(self.modes) - 1))

    @property
    def prototype_length(self) -> int:
        return self.n_phases * self.taps_per_phase

    # ------------------------------------------------------------------
    # position accumulator
    #
    # The SRC tracks the *position of the next output relative to the
    # newest input sample*, in units of 2**-phase_frac_bits polyphase
    # steps.  Every output request adds the full rate ratio (integer part
    # included); every input arrival subtracts one whole input sample
    # (n_phases * 2**frac).  Updates *wrap* in two's complement -- wrapping
    # addition is commutative, so the register ends up bit-identical no
    # matter how a clocked implementation groups coincident input and
    # output events into cycles (a saturating update would not be).  The
    # headroom bits make wrap unreachable in any schedule-driven run.
    # The polyphase branch index is the clamped position's top bits.
    # ------------------------------------------------------------------
    @property
    def pos_width(self) -> int:
        """Signed width of the position register (two headroom bits each
        side of the [0, 2) working range)."""
        return self.phase_acc_bits + 4

    @property
    def one_sample_units(self) -> int:
        """One input-sample period in position units."""
        return self.n_phases << self.phase_frac_bits

    def position_increment(self, mode: int) -> int:
        """Position advance per output sample (full ratio, rounded)."""
        ratio = self.modes[mode].ratio
        scaled = ratio * self.n_phases * (1 << self.phase_frac_bits)
        return int(scaled + Fraction(1, 2))

    def pos_after_output(self, pos: int, mode: int) -> int:
        """Position after producing one output sample (wrapping)."""
        return wrap_signed(pos + self.position_increment(mode),
                           self.pos_width)

    def pos_after_input(self, pos: int) -> int:
        """Position after one input sample arrives (wrapping)."""
        return wrap_signed(pos - self.one_sample_units, self.pos_width)

    def phase_from_pos(self, pos: int) -> int:
        """Polyphase branch index for position *pos* (clamped into range)."""
        clamped = min(max(pos, 0), self.one_sample_units - 1)
        return clamped >> self.phase_frac_bits

    # ------------------------------------------------------------------
    # output scaling (identical at every refinement level)
    # ------------------------------------------------------------------
    @property
    def coef_frac_bits(self) -> int:
        """Fractional bits of the quantised coefficients (Q1 format).

        Individual coefficients peak near the design cutoff (< 1.0), so
        they fit Q1.(coef_width-1); a peak at exactly 1.0 saturates to the
        largest representable value with negligible error.
        """
        return self.coef_width - 1

    def round_and_saturate(self, acc_value: int) -> int:
        """Scale a MAC accumulator down to an output sample.

        Round-to-nearest (half away from zero is NOT used -- hardware uses
        the cheaper add-half-then-shift), then saturate to ``data_width``.
        """
        shift = self.coef_frac_bits
        rounded = (acc_value + (1 << (shift - 1))) >> shift
        return saturate_signed(rounded, self.data_width)

    def wrap_acc(self, value: int) -> int:
        """Wrap a MAC value into the declared accumulator width."""
        return wrap_signed(value, self.acc_width)

    @property
    def max_latency_cycles(self) -> int:
        """Conservative bound on output-computation latency in clock
        cycles, covering the slowest implementation (the unoptimised
        behavioural design with per-tap handshaking).  Used to place
        mode-change events in guaranteed-idle gaps and to size testbench
        timeouts."""
        return 6 * self.taps_per_phase + 16

    # ------------------------------------------------------------------
    def clock_ticks(self, time_ps: int) -> int:
        """Quantise *time_ps* up to the next clock tick (paper Fig. 7)."""
        return -(-time_ps // self.clock_period_ps)

    def sample_period_ps(self, rate_hz: int) -> Fraction:
        """Exact sample period of *rate_hz* in picoseconds."""
        return Fraction(1_000_000_000_000, rate_hz)


#: Paper-scale configuration (DATE 2004 SRC).
PAPER_PARAMS = SrcParams()

#: Reduced configuration for fast unit tests and gate-level simulation.
SMALL_PARAMS = SrcParams(
    n_phases=16,
    taps_per_phase=4,
    data_width=8,
    coef_width=10,
    phase_frac_bits=10,
    buffer_depth=6,
    clock_period_ps=period_ps(48_000 * 64),
)
