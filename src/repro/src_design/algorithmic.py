"""The initial executable specification -- the paper's C++ golden model.

Structure follows paper Figure 3 exactly:

* :class:`InputBuffer` -- a ring buffer of past input samples whose read /
  write *iterators* encapsulate the wrap-around (Figure 4);
* :class:`PolyphaseFilter` -- coefficient storage (symmetric half only)
  with an iterator hiding the storage order;
* :func:`filter_sample` -- the free convolution function, deliberately a
  member of neither class: it consumes samples and coefficients the same
  way, through their iterators.

The model also carries the **golden-model bug** of paper Section 4.7: in
the corner case "output requested after a flush but before any input has
arrived", a leftover prefetch reads buffer address ``buffer_depth`` --
one past the valid range.  The read value never reaches an output (the
early-out returns silence), so the bug is functionally invisible and
survives every refinement step; only an address-checking memory model
(gate level) exposes it.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from .coefficients import PolyphaseCoefficientIterator, build_rom, rom_address
from .params import SrcParams
from .schedule import KIND_IN, KIND_MODE, KIND_OUT, SampleEvent

#: signature of an optional memory-access monitor: (address, valid_range)
AccessMonitor = Callable[[int, int], None]


class InputBuffer:
    """Ring buffer of past input samples (paper Figures 3 and 4).

    Valid slots are ``0 .. depth-1``.  Slot ``depth`` exists as a *stale
    cell* mirroring the C++ out-of-bounds read target: it is never
    written, always reads 0, and accessing it invokes the monitor (if one
    is attached) -- silently, like real hardware, otherwise.
    """

    def __init__(self, depth: int, monitor: Optional[AccessMonitor] = None,
                 width: Optional[int] = None):
        if depth < 2:
            raise ValueError(f"buffer depth must be >= 2, got {depth}")
        self.depth = depth
        self._slots = [0] * (depth + 1)  # +1: the invalid stale cell
        self._newest = depth - 1
        self.monitor = monitor
        #: sample width; out-of-range writes wrap like the hardware RAM
        self.width = width

    def flush(self) -> None:
        """Zero all valid slots and reset the write position."""
        for i in range(self.depth):
            self._slots[i] = 0
        self._newest = self.depth - 1

    def write(self, sample: int) -> None:
        if self.width is not None:
            from ..datatypes.integers import wrap_signed

            sample = wrap_signed(sample, self.width)
        self._newest += 1
        if self._newest >= self.depth:
            self._newest -= self.depth
        self._slots[self._newest] = sample

    def read_raw(self, address: int) -> int:
        """Direct addressed read -- the path the refined hardware uses."""
        if self.monitor is not None:
            self.monitor(address, self.depth)
        if not 0 <= address <= self.depth:
            raise IndexError(
                f"buffer address {address} outside physical array "
                f"[0, {self.depth}]"
            )
        return self._slots[address]

    @property
    def newest_index(self) -> int:
        return self._newest

    def read_iterator(self) -> "RingReadIterator":
        """Iterator stepping backwards from the newest sample (Figure 4)."""
        return RingReadIterator(self)


class RingReadIterator:
    """Backward-stepping read pointer with automatic wrap (paper Fig. 4).

    "The iterator internally holds an index to an array and ensures a
    correct wrap around, because it can only be modified through public
    methods."
    """

    def __init__(self, buffer: InputBuffer):
        self._buffer = buffer
        self._offset = 0

    def __iter__(self) -> "RingReadIterator":
        return self

    def __next__(self) -> int:
        address = self._buffer.newest_index + self._buffer.depth - self._offset
        if address >= self._buffer.depth:
            address -= self._buffer.depth
        self._offset += 1
        return self._buffer.read_raw(address)


class PolyphaseFilter:
    """Coefficient storage for the time-varying impulse response.

    Stores only the first half of the symmetric prototype; the iterator
    (from :mod:`repro.src_design.coefficients`) hides the storage order
    and the mirroring.
    """

    def __init__(self, params: SrcParams):
        self.params = params
        self.rom = build_rom(params)

    def coefficient_iterator(self, phase: int) -> PolyphaseCoefficientIterator:
        return PolyphaseCoefficientIterator(self.params, phase)

    def coefficient(self, phase: int, tap: int) -> int:
        return self.rom[rom_address(self.params, phase, tap)]


def filter_sample(params: SrcParams, samples: Iterator[int],
                  coefficients: Iterator[int]) -> int:
    """One output sample: convolve via the two iterators (paper Fig. 3).

    Associated with *neither* the buffer nor the filter class: "the filter
    needs the samples from the input buffer in the same way it needs the
    coefficients of the polyphase filter".
    """
    acc = 0
    for _ in range(params.taps_per_phase):
        acc = params.wrap_acc(acc + next(samples) * next(coefficients))
    return params.round_and_saturate(acc)


class AlgorithmicSrc:
    """The untimed sequential SRC -- the golden model.

    Drives the conversion from an event schedule (see
    :mod:`repro.src_design.schedule`): input events push samples into the
    per-channel ring buffers, output events run the convolution with the
    current phase, mode events reconfigure and flush.
    """

    def __init__(self, params: SrcParams, mode: int = 0,
                 monitor: Optional[AccessMonitor] = None,
                 with_corner_bug: bool = True):
        self.params = params
        self.filter = PolyphaseFilter(params)
        self.buffers = [InputBuffer(params.buffer_depth, monitor,
                                    width=params.data_width)
                        for _ in range(params.n_channels)]
        self.with_corner_bug = with_corner_bug
        self.mode = mode
        self.position = 0
        self.fill = 0
        self.set_mode(mode)

    # ------------------------------------------------------------------
    def set_mode(self, mode: int) -> None:
        """Reconfigure the conversion ratio; flushes all state."""
        if not 0 <= mode < len(self.params.modes):
            raise ValueError(f"mode {mode} out of range")
        self.mode = mode
        self.position = 0
        self.fill = 0
        for buf in self.buffers:
            buf.flush()

    def write_sample(self, frame: Sequence[int]) -> None:
        """Push one input frame (one sample per channel)."""
        if len(frame) != self.params.n_channels:
            raise ValueError(
                f"expected {self.params.n_channels} channels, got {len(frame)}"
            )
        for buf, sample in zip(self.buffers, frame):
            buf.write(sample)
        self.position = self.params.pos_after_input(self.position)
        if self.fill < self.params.taps_per_phase:
            self.fill += 1

    def read_sample(self) -> Tuple[int, ...]:
        """Produce one output frame at the current phase."""
        params = self.params
        self.position = params.pos_after_output(self.position, self.mode)
        if self.fill == 0:
            # Corner case (paper Section 4.7): no sample has arrived since
            # the flush.  The original code still issues the first buffer
            # prefetch -- whose address register holds the flush sentinel,
            # i.e. the *invalid* address 'depth' -- before taking the
            # silence early-out.  The fetched value is discarded, so the
            # bug is functionally invisible.
            if self.with_corner_bug:
                for buf in self.buffers:
                    buf.read_raw(buf.depth)
            return tuple([0] * params.n_channels)
        phase = params.phase_from_pos(self.position)
        frame = []
        for buf in self.buffers:
            value = filter_sample(
                params,
                buf.read_iterator(),
                self.filter.coefficient_iterator(phase),
            )
            frame.append(value)
        return tuple(frame)

    # ------------------------------------------------------------------
    def process_schedule(
        self,
        schedule: Sequence[SampleEvent],
        inputs: Sequence[Sequence[int]],
    ) -> List[Tuple[int, ...]]:
        """Run the full schedule; returns the list of output frames."""
        outputs: List[Tuple[int, ...]] = []
        for event in schedule:
            if event.kind == KIND_IN:
                self.write_sample(inputs[event.value])
            elif event.kind == KIND_OUT:
                outputs.append(self.read_sample())
            elif event.kind == KIND_MODE:
                self.set_mode(event.value)
            else:  # pragma: no cover - schedule is validated upstream
                raise ValueError(f"unknown event kind {event.kind!r}")
        return outputs
