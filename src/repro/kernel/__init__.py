"""A SystemC-like discrete-event simulation kernel in pure Python.

The kernel implements the semantics the paper's refinement flow relies on:
delta cycles with evaluate/update phases, thread and method processes,
events with immediate/delta/timed notification, signals, clocks, FIFOs,
ports with interface-method-call forwarding, and hierarchical channels.
"""

from .channels import Fifo, HierarchicalChannel, Mutex, Semaphore
from .clock import Clock
from .context import (NoSimulationError, current_simulation,
                      current_simulation_or_none, set_current_simulation)
from .event import AllOf, AnyOf, Event, Timeout, delay
from .module import Module
from .ports import Export, Port, SignalInPort, SignalOutPort
from .process import KernelError, MethodProcess, Process, ThreadProcess
from .profiling import ProcessProfile, ProfileReport, SimulationProfiler
from .report import Reporter, ReportError, Severity
from .resolved import ResolvedSignal
from .scheduler import Simulation, SimulationError
from .signal import Signal
from .simtime import MS, NS, PS, SEC, US, format_time, period_ps, to_ps
from .tracing import VcdTracer

__all__ = [
    "AllOf", "AnyOf", "Clock", "Event", "Export", "Fifo",
    "HierarchicalChannel", "KernelError", "MS", "MethodProcess", "Module",
    "Mutex", "NS", "NoSimulationError", "PS", "Port", "Process",
    "ProcessProfile", "ProfileReport", "SimulationProfiler",
    "ReportError", "Reporter", "ResolvedSignal", "SEC", "Semaphore",
    "Severity", "Signal",
    "SignalInPort", "SignalOutPort", "Simulation", "SimulationError",
    "ThreadProcess", "Timeout", "US", "VcdTracer", "current_simulation",
    "current_simulation_or_none", "delay", "format_time", "period_ps",
    "set_current_simulation", "to_ps",
]
