"""The discrete-event scheduler with SystemC delta-cycle semantics.

Each delta cycle runs in three phases, exactly as the SystemC LRM
prescribes:

1. **evaluate** -- run every runnable process; immediate notifications may
   make further processes runnable within the same phase;
2. **update** -- commit pending primitive-channel updates (signal writes);
3. **delta notification** -- fire delta-notified events, producing the
   runnable set of the next delta cycle.

When no process is runnable after the delta-notification phase, time
advances to the earliest pending timed notification.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Iterable, List, Optional

from . import context
from .event import Event
from .module import Module
from .process import MethodProcess, Process, ThreadProcess
from ..obs.metrics import KERNEL_STATS as _KERNEL_STATS


class SimulationError(RuntimeError):
    """Raised for fatal scheduler conditions (e.g. delta-cycle livelock)."""


class _TimedEntry:
    """Heap entry for a timed notification (cancellable)."""

    __slots__ = ("time_ps", "seq", "event", "cancelled")

    def __init__(self, time_ps: int, seq: int, event: Event):
        self.time_ps = time_ps
        self.seq = seq
        self.event = event
        self.cancelled = False

    def __lt__(self, other: "_TimedEntry") -> bool:
        return (self.time_ps, self.seq) < (other.time_ps, other.seq)


class Simulation:
    """Owns the event queues and executes the simulation.

    Parameters
    ----------
    *tops:
        Top-level :class:`~repro.kernel.module.Module` instances.  Their
        hierarchies are elaborated (ports bound, processes registered,
        clocks started).
    max_deltas_per_step:
        Safety limit on delta cycles at a single time point; exceeding it
        raises :class:`SimulationError` (combinational feedback loop).
    """

    def __init__(self, *tops: Module, max_deltas_per_step: int = 100_000):
        self.time_ps = 0
        self.delta_count = 0
        self.activation_count = 0
        # (deltas, activations) already folded into the process-wide
        # observability totals; run() folds only the growth since
        self._obs_folded = [0, 0]
        self._runnable: deque = deque()
        # update/delta queues are double-buffered: the drained list is
        # recycled as the next fill buffer instead of allocating a fresh
        # list every delta cycle (two per delta adds up -- the scheduler
        # loop runs millions of deltas in the clocked benchmarks)
        self._update_queue: List[object] = []
        self._update_spare: List[object] = []
        self._delta_events: List[Event] = []
        self._delta_spare: List[Event] = []
        self._timed: List[_TimedEntry] = []
        self._seq = itertools.count()
        self._max_deltas = max_deltas_per_step
        self._stopped = False
        self._processes: List[Process] = []
        #: optional per-execution hook installed by SimulationProfiler:
        #: called as hook(proc) INSTEAD of proc._execute()
        self._profile_hook = None
        self.tops = list(tops)
        context.set_current_simulation(self)
        try:
            for top in self.tops:
                self._elaborate(top)
            self._initialize()
        except Exception:
            context.set_current_simulation(None)
            raise

    # ------------------------------------------------------------------
    # elaboration
    # ------------------------------------------------------------------
    def _elaborate(self, module: Module) -> None:
        module._elaborate(self)
        for proc in module._processes:
            proc.sim = self
            self._processes.append(proc)
        for child in module._children:
            self._elaborate(child)

    def _initialize(self) -> None:
        """Make every process runnable once (SystemC initialisation phase)."""
        for proc in self._processes:
            if not proc._dont_initialize:
                proc._runnable = True
                self._runnable.append(proc)

    # ------------------------------------------------------------------
    # kernel-side hooks used by events / signals / processes
    # ------------------------------------------------------------------
    def _schedule(self, proc: Process) -> None:
        self._runnable.append(proc)

    def _notify_delta(self, event: Event) -> None:
        self._delta_events.append(event)

    def _notify_timed(self, event: Event, when_ps: int) -> _TimedEntry:
        entry = _TimedEntry(when_ps, next(self._seq), event)
        heapq.heappush(self._timed, entry)
        return entry

    def _request_update(self, primitive) -> None:
        self._update_queue.append(primitive)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, duration_ps: Optional[int] = None) -> int:
        """Run for *duration_ps* picoseconds (or until no events remain).

        Returns the simulated time at which execution stopped.
        """
        end_time = None if duration_ps is None else self.time_ps + duration_ps
        self._stopped = False
        deltas_here = 0
        activations = 0
        runnable = self._runnable  # deque identity is fixed for the run
        while not self._stopped:
            # -- evaluate phase ----------------------------------------
            if runnable:
                hook = self._profile_hook
                if hook is None:
                    while runnable:
                        runnable.popleft()._execute()
                        activations += 1
                        if self._stopped:
                            break
                else:
                    while runnable:
                        hook(runnable.popleft())
                        activations += 1
                        if self._stopped:
                            break
                if self._stopped:
                    break
                # -- update phase --------------------------------------
                if self._update_queue:
                    updates = self._update_queue
                    self._update_queue = self._update_spare
                    for prim in updates:
                        prim._update()
                    updates.clear()
                    self._update_spare = updates
                # -- delta notification phase --------------------------
                if self._delta_events:
                    events = self._delta_events
                    self._delta_events = self._delta_spare
                    for ev in events:
                        ev._trigger()
                    events.clear()
                    self._delta_spare = events
                self.delta_count += 1
                deltas_here += 1
                if deltas_here > self._max_deltas:
                    raise SimulationError(
                        f"more than {self._max_deltas} delta cycles at "
                        f"t={self.time_ps} ps -- livelock?"
                    )
                continue
            # -- advance time ------------------------------------------
            deltas_here = 0
            next_entry = self._pop_next_timed()
            if next_entry is None:
                break  # event-starved
            if end_time is not None and next_entry.time_ps > end_time:
                heapq.heappush(self._timed, next_entry)
                self.time_ps = end_time
                break
            self.time_ps = next_entry.time_ps
            next_entry.event._trigger()
            # Release all other notifications scheduled for this instant.
            # Cancelled entries are drained rather than treated as a stop
            # condition: a cancelled heap head must not hide live
            # notifications behind it at the same time point.
            while self._timed and self._timed[0].time_ps == self.time_ps:
                entry = heapq.heappop(self._timed)
                if not entry.cancelled:
                    entry.event._trigger()
            self._drop_cancelled_head()
        if end_time is not None and not self._stopped:
            self.time_ps = max(self.time_ps, end_time)
        # fold this run's scheduler counts into the process-wide
        # observability totals (amortised: once per run() call, not per
        # delta) so the metrics registry can report them without any
        # cost inside the evaluate loop
        self.activation_count += activations
        folded = self._obs_folded
        _KERNEL_STATS[0] += self.delta_count - folded[0]
        _KERNEL_STATS[1] += self.activation_count - folded[1]
        folded[0] = self.delta_count
        folded[1] = self.activation_count
        return self.time_ps

    def _pop_next_timed(self) -> Optional[_TimedEntry]:
        while self._timed:
            entry = heapq.heappop(self._timed)
            if not entry.cancelled:
                return entry
        return None

    def _drop_cancelled_head(self) -> None:
        while self._timed and self._timed[0].cancelled:
            heapq.heappop(self._timed)

    def stop(self) -> None:
        """Stop the simulation after the current process returns."""
        self._stopped = True

    @property
    def pending_activity(self) -> bool:
        """True when runnable processes or queued notifications remain."""
        self._drop_cancelled_head()
        return bool(self._runnable or self._delta_events or self._timed)

    def close(self) -> None:
        """Release the global simulation context."""
        if context.current_simulation_or_none() is self:
            context.set_current_simulation(None)

    def __enter__(self) -> "Simulation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
