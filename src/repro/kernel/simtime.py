"""Simulation-time representation.

Simulated time is represented as an integer number of picoseconds, which
keeps the scheduler exact (no floating-point drift) and fast (plain ``int``
comparisons in the event heap).  Unit constants convert human-friendly
quantities to picoseconds.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

#: One picosecond -- the base resolution of the kernel.
PS = 1
#: One nanosecond in picoseconds.
NS = 1_000
#: One microsecond in picoseconds.
US = 1_000_000
#: One millisecond in picoseconds.
MS = 1_000_000_000
#: One second in picoseconds.
SEC = 1_000_000_000_000

_UNIT_NAMES = [(SEC, "s"), (MS, "ms"), (US, "us"), (NS, "ns"), (PS, "ps")]

TimeLike = Union[int, float, Fraction]


def to_ps(value: TimeLike, unit: int = NS) -> int:
    """Convert *value* in the given *unit* to integer picoseconds.

    Float and :class:`~fractions.Fraction` values are rounded to the
    nearest picosecond.

    >>> to_ps(40, NS)
    40000
    >>> to_ps(0.5, NS)
    500
    """
    if unit <= 0:
        raise ValueError(f"time unit must be positive, got {unit}")
    if isinstance(value, int):
        return value * unit
    if isinstance(value, Fraction):
        return int(round(value * unit))
    return int(round(value * unit))


def period_ps(frequency_hz: TimeLike) -> int:
    """Return the period of *frequency_hz* in picoseconds (rounded).

    >>> period_ps(25_000_000)
    40000
    """
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    if isinstance(frequency_hz, Fraction):
        return int(round(Fraction(SEC) / frequency_hz))
    return int(round(SEC / frequency_hz))


def format_time(time_ps: int) -> str:
    """Render *time_ps* with the largest unit that divides it cleanly.

    >>> format_time(40000)
    '40 ns'
    >>> format_time(1500)
    '1500 ps'
    """
    if time_ps == 0:
        return "0 ps"
    for scale, suffix in _UNIT_NAMES:
        if time_ps % scale == 0 and abs(time_ps) >= scale:
            return f"{time_ps // scale} {suffix}"
    return f"{time_ps} ps"
