"""Multi-driver resolved signals (SystemC ``sc_signal_resolved``).

A resolved signal accepts writes from several drivers per delta cycle
and resolves them with IEEE-1164 wire resolution (conflicting 0/1 give
X, Z yields to any driven value).  Values are 4-valued logic codes from
:mod:`repro.datatypes.logic`.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..datatypes import logic as L
from .context import current_simulation_or_none
from .signal import Signal


class ResolvedSignal(Signal):
    """A signal with per-driver values and wire resolution.

    Drivers are identified by an arbitrary hashable key (typically the
    driving module or process); each driver's last write persists until
    it writes again or :meth:`release`\\ s the net (drives Z).
    """

    __slots__ = ("_drivers",)

    def __init__(self, name: str = "resolved"):
        super().__init__(L.LZ, name)
        self._drivers: Dict[object, int] = {}

    def drive(self, driver: object, value: int) -> None:
        """Set *driver*'s contribution; schedules net resolution."""
        if value not in (L.L0, L.L1, L.LX, L.LZ):
            raise ValueError(f"invalid logic value {value!r}")
        self._drivers[driver] = value
        self._schedule_resolve()

    def release(self, driver: object) -> None:
        """Remove *driver* from the net (drives Z)."""
        if driver in self._drivers:
            del self._drivers[driver]
            self._schedule_resolve()

    def _schedule_resolve(self) -> None:
        resolved = L.resolve(self._drivers.values())
        sim = current_simulation_or_none()
        if sim is None:
            self._value = resolved
            self._next_value = resolved
            return
        self._next_value = resolved
        if not self._update_requested:
            self._update_requested = True
            sim._request_update(self)

    def write(self, value: int) -> None:  # pragma: no cover - guard
        raise TypeError(
            "ResolvedSignal has multiple drivers: use drive(driver, value)"
        )

    @property
    def driver_count(self) -> int:
        return len(self._drivers)
