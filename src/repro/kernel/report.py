"""Severity-classified reporting (SystemC ``sc_report``)."""

from __future__ import annotations

import enum
import sys
from collections import Counter
from typing import List, Optional, TextIO, Tuple


class Severity(enum.IntEnum):
    INFO = 0
    WARNING = 1
    ERROR = 2
    FATAL = 3


class ReportError(RuntimeError):
    """Raised when a report at or above the raise threshold is issued."""


class Reporter:
    """Collects classified messages and optionally raises on errors.

    The gate-level memory model of the paper's bug story reports invalid
    accesses through a :class:`Reporter`, so testbenches can either fail
    hard (raise) or collect violations for later inspection.
    """

    def __init__(self, raise_at: Severity = Severity.FATAL,
                 stream: Optional[TextIO] = None):
        self.raise_at = raise_at
        self.stream = stream
        self.records: List[Tuple[Severity, str, str]] = []
        self.counts: Counter = Counter()

    def report(self, severity: Severity, tag: str, message: str) -> None:
        self.records.append((severity, tag, message))
        self.counts[severity] += 1
        if self.stream is not None:
            self.stream.write(f"[{severity.name}] {tag}: {message}\n")
        if severity >= self.raise_at:
            raise ReportError(f"[{severity.name}] {tag}: {message}")

    def info(self, tag: str, message: str) -> None:
        self.report(Severity.INFO, tag, message)

    def warning(self, tag: str, message: str) -> None:
        self.report(Severity.WARNING, tag, message)

    def error(self, tag: str, message: str) -> None:
        self.report(Severity.ERROR, tag, message)

    def fatal(self, tag: str, message: str) -> None:
        self.report(Severity.FATAL, tag, message)

    def count(self, severity: Severity) -> int:
        return self.counts.get(severity, 0)

    def messages(self, severity: Optional[Severity] = None) -> List[str]:
        return [
            f"{tag}: {msg}"
            for sev, tag, msg in self.records
            if severity is None or sev == severity
        ]
