"""Simulation profiling -- the tool the paper wished it had.

Section 5.1: "Due to the lack of proper profiling tools for the SystemC
simulation, it could not be checked whether the RTL parts dominated the
overall simulation or whether the behavioural part is not significantly
faster at all."

:class:`SimulationProfiler` wraps every process of a simulation and
records per-process activation counts and wall time, so exactly that
question becomes answerable (see
``repro.flow.performance`` and the profiling example/test, which use it
to split the behavioural SRC simulation into front-end vs. main-process
cost).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .process import MethodProcess, Process, ThreadProcess
from .scheduler import Simulation


@dataclass
class ProcessProfile:
    """Accumulated cost of one process."""

    name: str
    activations: int = 0
    wall_seconds: float = 0.0

    @property
    def mean_us(self) -> float:
        if not self.activations:
            return 0.0
        return self.wall_seconds / self.activations * 1e6


@dataclass
class ProfileReport:
    """Per-process breakdown of a simulation run."""

    profiles: List[ProcessProfile]
    total_wall_seconds: float

    def by_share(self) -> List[ProcessProfile]:
        return sorted(self.profiles, key=lambda p: -p.wall_seconds)

    def share_of(self, substring: str) -> float:
        """Fraction of profiled time spent in processes whose name
        contains *substring*."""
        total = sum(p.wall_seconds for p in self.profiles)
        if total <= 0.0:
            return 0.0
        part = sum(p.wall_seconds for p in self.profiles
                   if substring in p.name)
        return part / total

    def format(self, top: int = 10) -> str:
        lines = [
            "Simulation profile (per process):",
            f"{'process':40s} {'act.':>8s} {'wall ms':>9s} {'share':>7s}",
        ]
        total = sum(p.wall_seconds for p in self.profiles) or 1.0
        for prof in self.by_share()[:top]:
            lines.append(
                f"{prof.name[:40]:40s} {prof.activations:8d} "
                f"{prof.wall_seconds * 1000:9.2f} "
                f"{prof.wall_seconds / total * 100:6.1f}%"
            )
        return "\n".join(lines)


class SimulationProfiler:
    """Instruments a :class:`Simulation`'s processes.

    Create it *after* the simulation (so all processes exist), run the
    simulation, then call :meth:`report`.
    """

    def __init__(self, sim: Simulation):
        self.sim = sim
        self._profiles: Dict[Process, ProcessProfile] = {}
        self._start = time.perf_counter()
        self._hook = self._execute_timed  # stable bound-method reference
        sim._profile_hook = self._hook

    def _profile_for(self, proc: Process) -> ProcessProfile:
        profile = self._profiles.get(proc)
        if profile is None:
            profile = ProcessProfile(proc.name)
            self._profiles[proc] = profile
        return profile

    def _execute_timed(self, proc: Process) -> None:
        profile = self._profile_for(proc)
        t0 = time.perf_counter()
        try:
            proc._execute()
        finally:
            profile.wall_seconds += time.perf_counter() - t0
            profile.activations += 1

    def detach(self) -> None:
        """Stop profiling (removes the scheduler hook)."""
        if self.sim._profile_hook is self._hook:
            self.sim._profile_hook = None

    def report(self) -> ProfileReport:
        return ProfileReport(
            profiles=list(self._profiles.values()),
            total_wall_seconds=time.perf_counter() - self._start,
        )
