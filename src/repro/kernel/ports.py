"""Ports and exports (SystemC ``sc_port`` / ``sc_export``).

A port is a named hole in a module's boundary that is *bound* to a channel
(a signal, a FIFO, or a hierarchical channel implementing an interface)
before elaboration.  After binding, interface method calls made on the
port are forwarded to the channel -- this is SystemC's interface-method-
call (IMC) mechanism.
"""

from __future__ import annotations

from typing import Optional, Type

from .process import KernelError


class Port:
    """A bindable reference to a channel implementing *iface* (optional)."""

    def __init__(self, iface: Optional[Type] = None, name: str = "port"):
        self.iface = iface
        self.name = name
        self.owner = None
        self.channel = None

    # ------------------------------------------------------------------
    def bind(self, channel) -> None:
        """Bind this port to *channel* (or to another, already-bound port)."""
        if isinstance(channel, Port):
            if channel.channel is None:
                raise KernelError(
                    f"port {self.name!r} bound to unbound port {channel.name!r}"
                )
            channel = channel.channel
        if self.iface is not None and not isinstance(channel, self.iface):
            raise KernelError(
                f"port {self.name!r} requires interface "
                f"{self.iface.__name__}, got {type(channel).__name__}"
            )
        self.channel = channel

    def __call__(self, channel) -> None:
        """SystemC-style binding syntax: ``module.port(channel)``."""
        self.bind(channel)

    def _check_bound(self) -> None:
        if self.channel is None:
            raise KernelError(f"port {self.name!r} left unbound at elaboration")

    # ------------------------------------------------------------------
    # interface-method-call forwarding
    # ------------------------------------------------------------------
    def __getattr__(self, item):
        channel = object.__getattribute__(self, "channel")
        if channel is None:
            raise KernelError(
                f"interface method {item!r} called on unbound port "
                f"{object.__getattribute__(self, 'name')!r}"
            )
        return getattr(channel, item)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        bound = type(self.channel).__name__ if self.channel is not None else "unbound"
        return f"Port({self.name!r} -> {bound})"


class SignalInPort(Port):
    """Read-only port bound to a :class:`~repro.kernel.signal.Signal`."""

    def read(self):
        return self.channel.read()

    @property
    def value(self):
        return self.channel.read()

    def default_event(self):
        return self.channel.default_event()

    @property
    def posedge(self):
        return self.channel.posedge

    @property
    def negedge(self):
        return self.channel.negedge

    def write(self, value):  # pragma: no cover - misuse guard
        raise KernelError(f"write through input port {self.name!r}")


class SignalOutPort(Port):
    """Write-only port bound to a :class:`~repro.kernel.signal.Signal`."""

    def write(self, value) -> None:
        self.channel.write(value)

    def read(self):
        # SystemC sc_out allows reading back the driven value.
        return self.channel.read()


class Export(Port):
    """An ``sc_export``: exposes an internal channel at a module boundary."""
