"""Standard channels: FIFO, mutex, semaphore, and hierarchical channels.

Blocking channel operations are generator methods and must be invoked with
``yield from`` inside a thread process, mirroring how SystemC channel
methods call ``wait()`` internally.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generic, TypeVar

from .event import Event
from .module import Module
from .process import KernelError

T = TypeVar("T")


class Fifo(Generic[T]):
    """Bounded FIFO with blocking read/write (``sc_fifo``)."""

    def __init__(self, capacity: int = 16, name: str = "fifo"):
        if capacity < 1:
            raise ValueError(f"fifo capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._items: Deque[T] = deque()
        self.data_written = Event(f"{name}.data_written")
        self.data_read = Event(f"{name}.data_read")

    # -- non-blocking -----------------------------------------------------
    def num_available(self) -> int:
        return len(self._items)

    def num_free(self) -> int:
        return self.capacity - len(self._items)

    def nb_write(self, item: T) -> bool:
        if self.num_free() == 0:
            return False
        self._items.append(item)
        self.data_written.notify()
        return True

    def nb_read(self):
        if not self._items:
            return False, None
        item = self._items.popleft()
        self.data_read.notify()
        return True, item

    # -- blocking (generator) ----------------------------------------------
    def write(self, item: T):
        """Blocking write; use as ``yield from fifo.write(x)``."""
        while self.num_free() == 0:
            yield self.data_read
        self._items.append(item)
        self.data_written.notify()

    def read(self):
        """Blocking read; use as ``x = yield from fifo.read()``."""
        while not self._items:
            yield self.data_written
        item = self._items.popleft()
        self.data_read.notify()
        return item

    def default_event(self) -> Event:
        return self.data_written


class Mutex:
    """A mutual-exclusion lock (``sc_mutex``)."""

    def __init__(self, name: str = "mutex"):
        self.name = name
        self._locked = False
        self.released = Event(f"{name}.released")

    def trylock(self) -> bool:
        if self._locked:
            return False
        self._locked = True
        return True

    def lock(self):
        """Blocking lock; use as ``yield from mutex.lock()``."""
        while self._locked:
            yield self.released
        self._locked = True

    def unlock(self) -> None:
        if not self._locked:
            raise KernelError(f"unlock of unlocked mutex {self.name!r}")
        self._locked = False
        self.released.notify()

    @property
    def locked(self) -> bool:
        return self._locked


class Semaphore:
    """A counting semaphore (``sc_semaphore``)."""

    def __init__(self, initial: int, name: str = "semaphore"):
        if initial < 0:
            raise ValueError(f"semaphore count must be >= 0, got {initial}")
        self.name = name
        self._count = initial
        self.posted = Event(f"{name}.posted")

    def trywait(self) -> bool:
        if self._count == 0:
            return False
        self._count -= 1
        return True

    def wait(self):
        """Blocking wait; use as ``yield from sem.wait()``."""
        while self._count == 0:
            yield self.posted
        self._count -= 1

    def post(self) -> None:
        self._count += 1
        self.posted.notify()

    @property
    def count(self) -> int:
        return self._count


class HierarchicalChannel(Module):
    """A module that also implements channel interfaces (SystemC idiom).

    The SRC of the paper's Figure 5 is exactly this: a module exposing
    ``SRC_CTRL``, ``SampleWriteIF`` and ``SampleReadIF`` to its environment
    while hiding an internal structure of submodules and threads.
    """
