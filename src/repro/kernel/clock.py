"""Clock generator (SystemC ``sc_clock``)."""

from __future__ import annotations

from .event import Timeout
from .module import Module
from .signal import Signal
from .simtime import NS, to_ps


class Clock(Module):
    """A free-running clock signal.

    The clock is a :class:`Module` owning a :class:`Signal`; ``posedge`` /
    ``negedge`` / ``default_event`` delegate to that signal so a ``Clock``
    can be used anywhere a signal is expected.

    Parameters
    ----------
    name:
        Instance name.
    period_ps:
        Clock period in picoseconds.
    duty:
        High-time fraction (default 0.5).
    start_high:
        Whether the first transition is a rising edge at t = 0 (default).
    """

    def __init__(self, name: str, period_ps: int, duty: float = 0.5,
                 start_high: bool = True):
        super().__init__(name)
        if period_ps <= 1:
            raise ValueError(f"clock period must exceed 1 ps, got {period_ps}")
        if not 0.0 < duty < 1.0:
            raise ValueError(f"duty cycle must be in (0, 1), got {duty}")
        self.period_ps = period_ps
        self.high_ps = max(1, int(round(period_ps * duty)))
        self.low_ps = period_ps - self.high_ps
        if self.low_ps < 1:
            raise ValueError("duty cycle leaves no low time")
        self.start_high = start_high
        self.signal = Signal(0, name=f"{name}.sig")
        # Timeout specs are immutable, so the generator recycles one per
        # phase instead of allocating two objects every clock period.
        self._high_wait = Timeout(self.high_ps)
        self._low_wait = Timeout(self.low_ps)
        self.add_thread(self._toggle, name=f"{name}.gen")

    def _toggle(self):
        if not self.start_high:
            yield self._low_wait
        while True:
            self.signal.write(1)
            yield self._high_wait
            self.signal.write(0)
            yield self._low_wait

    # -- signal-like facade ------------------------------------------------
    def read(self) -> int:
        return self.signal.read()

    @property
    def value(self) -> int:
        return self.signal.read()

    def default_event(self):
        return self.signal.value_changed

    @property
    def posedge(self):
        return self.signal.posedge

    @property
    def negedge(self):
        return self.signal.negedge

    @property
    def frequency_hz(self) -> float:
        from .simtime import SEC

        return SEC / self.period_ps
