"""Tracking of the currently-active simulation.

SystemC keeps a single global simulation context; we mirror that so that
channels, events and signals created anywhere can reach the scheduler
without threading a handle through every constructor.  Exactly one
:class:`~repro.kernel.scheduler.Simulation` may be active at a time; tests
create simulations sequentially, which is fully supported.
"""

from __future__ import annotations

from typing import Optional

_current = None


class NoSimulationError(RuntimeError):
    """Raised when a kernel primitive needs a scheduler but none is active."""


def current_simulation():
    """Return the active :class:`Simulation`, or raise :class:`NoSimulationError`."""
    if _current is None:
        raise NoSimulationError(
            "no active simulation -- create a repro.kernel.Simulation first"
        )
    return _current


def current_simulation_or_none() -> Optional[object]:
    """Return the active simulation, or ``None`` when none exists."""
    return _current


def set_current_simulation(sim) -> None:
    """Install *sim* as the active simulation (``None`` clears it)."""
    global _current
    _current = sim
