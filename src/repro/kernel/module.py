"""Modules -- the structural building block (SystemC ``sc_module``).

A module owns processes, child modules, signals and ports.  Assigning a
kernel object to a module attribute automatically registers it in the
hierarchy and derives its hierarchical name, mirroring SystemC's
constructor-time hierarchy building.
"""

from __future__ import annotations

from typing import Callable, Generator, Iterable, List, Optional

from .event import Event
from .process import MethodProcess, Process, ThreadProcess


class Module:
    """Base class for hardware modules and hierarchical channels.

    .. note::
       ``name`` and ``parent`` are reserved attributes of the hierarchy;
       subclasses must not reuse them for processes or fields.
    """

    def __init__(self, name: str):
        # Use object.__setattr__ to dodge the registration hook below.
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "parent", None)
        object.__setattr__(self, "_children", [])
        object.__setattr__(self, "_processes", [])
        object.__setattr__(self, "_signals", [])
        object.__setattr__(self, "_ports", [])
        object.__setattr__(self, "_elaborated", False)

    # ------------------------------------------------------------------
    # hierarchy
    # ------------------------------------------------------------------
    def __setattr__(self, key: str, value) -> None:
        if not key.startswith("_"):
            from .signal import Signal
            from .ports import Port

            if isinstance(value, Module) and value.parent is None and value is not self:
                object.__setattr__(value, "parent", self)
                self._children.append(value)
            elif isinstance(value, Signal):
                if value.name == "signal":
                    value.name = f"{self.full_name}.{key}"
                self._signals.append(value)
            elif isinstance(value, Port):
                if value.owner is None:
                    value.owner = self
                    value.name = f"{self.full_name}.{key}"
                self._ports.append(value)
        object.__setattr__(self, key, value)

    @property
    def full_name(self) -> str:
        if self.parent is None:
            return self.name
        return f"{self.parent.full_name}.{self.name}"

    def iter_modules(self) -> Iterable["Module"]:
        """Yield this module and all descendants, depth first."""
        yield self
        for child in self._children:
            yield from child.iter_modules()

    # ------------------------------------------------------------------
    # process registration
    # ------------------------------------------------------------------
    def add_thread(
        self,
        factory: Callable[[], Generator],
        name: Optional[str] = None,
        dont_initialize: bool = False,
    ) -> ThreadProcess:
        """Register a thread process from a generator *factory* (no args)."""
        proc = ThreadProcess(name or self._proc_name(factory), factory)
        proc._dont_initialize = dont_initialize
        self._processes.append(proc)
        return proc

    def add_method(
        self,
        fn: Callable[[], None],
        sensitivity: Iterable = (),
        name: Optional[str] = None,
        dont_initialize: bool = False,
    ) -> MethodProcess:
        """Register a method process, statically sensitive to *sensitivity*.

        Sensitivity entries may be :class:`Event` objects or anything with a
        ``default_event()`` (signals, ports bound to signals).
        """
        proc = MethodProcess(name or self._proc_name(fn), fn)
        proc._dont_initialize = dont_initialize
        for item in sensitivity:
            proc.add_static_sensitivity(_as_event(item))
        self._processes.append(proc)
        return proc

    def make_sensitive(self, proc: Process, *items) -> None:
        """Extend a process's static sensitivity list."""
        for item in items:
            proc.add_static_sensitivity(_as_event(item))

    def _proc_name(self, fn) -> str:
        return f"{self.full_name}.{getattr(fn, '__name__', 'proc')}"

    def spawn(self, factory: Callable[[], Generator],
              name: Optional[str] = None) -> ThreadProcess:
        """Spawn a thread *during simulation* (SystemC ``sc_spawn``).

        Unlike :meth:`add_thread`, which registers processes for the
        elaboration phase, ``spawn`` may be called from a running
        process; the new thread becomes runnable in the next delta
        cycle.
        """
        from .context import current_simulation

        sim = current_simulation()
        proc = ThreadProcess(name or self._proc_name(factory), factory)
        proc.sim = sim
        self._processes.append(proc)
        sim._processes.append(proc)
        proc._runnable = True
        sim._schedule(proc)
        return proc

    # ------------------------------------------------------------------
    # elaboration hooks
    # ------------------------------------------------------------------
    def _elaborate(self, sim) -> None:
        if self._elaborated:
            return
        object.__setattr__(self, "_elaborated", True)
        for port in self._ports:
            port._check_bound()
        self.on_elaborate(sim)

    def on_elaborate(self, sim) -> None:
        """Hook for subclasses (e.g. clocks starting their toggle process)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.full_name!r})"


def _as_event(item) -> Event:
    if isinstance(item, Event):
        return item
    default = getattr(item, "default_event", None)
    if callable(default):
        return default()
    raise TypeError(f"cannot derive an event from {item!r}")
