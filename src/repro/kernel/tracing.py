"""VCD waveform tracing for signals (SystemC ``sc_trace``)."""

from __future__ import annotations

import io
from typing import Dict, List, Optional, TextIO, Tuple

from .context import current_simulation_or_none
from .signal import Signal


def _identifier(index: int) -> str:
    """Short printable VCD identifier for the *index*-th traced signal."""
    chars = "".join(chr(c) for c in range(33, 127))
    out = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(chars))
        out.append(chars[rem])
    return "".join(out)


class VcdTracer:
    """Collects signal changes and writes a Value Change Dump file.

    Usage::

        tracer = VcdTracer()
        tracer.trace(sig, "dout", width=16)
        ...  # run simulation
        tracer.write("wave.vcd")
    """

    def __init__(self, timescale: str = "1ps"):
        self.timescale = timescale
        self._signals: List[Tuple[Signal, str, int, str]] = []
        self._changes: List[Tuple[int, str, object, int]] = []

    def trace(self, signal: Signal, name: Optional[str] = None,
              width: int = 1) -> None:
        """Register *signal* for tracing as *name* with bit *width*."""
        ident = _identifier(len(self._signals))
        self._signals.append((signal, name or signal.name, width, ident))
        self._changes.append((0, ident, signal.read(), width))
        signal.add_trace_hook(self._make_hook(ident, width))

    def _make_hook(self, ident: str, width: int):
        def hook(signal: Signal) -> None:
            sim = current_simulation_or_none()
            t = sim.time_ps if sim is not None else 0
            self._changes.append((t, ident, signal.read(), width))

        return hook

    # ------------------------------------------------------------------
    def dumps(self) -> str:
        out = io.StringIO()
        self._write(out)
        return out.getvalue()

    def write(self, path: str) -> None:
        with open(path, "w", encoding="ascii") as fh:
            self._write(fh)

    def _write(self, fh: TextIO) -> None:
        fh.write("$date repro kernel trace $end\n")
        fh.write(f"$timescale {self.timescale} $end\n")
        fh.write("$scope module top $end\n")
        for _sig, name, width, ident in self._signals:
            safe = name.replace(" ", "_")
            fh.write(f"$var wire {width} {ident} {safe} $end\n")
        fh.write("$upscope $end\n$enddefinitions $end\n")
        last_time = None
        for t, ident, value, width in sorted(
            self._changes, key=lambda c: c[0]
        ):
            if t != last_time:
                fh.write(f"#{t}\n")
                last_time = t
            fh.write(_format_value(value, width, ident))


def _format_value(value, width: int, ident: str) -> str:
    if width == 1:
        bit = "1" if value else "0"
        return f"{bit}{ident}\n"
    ival = int(value) & ((1 << width) - 1)
    return f"b{ival:0{width}b} {ident}\n"
