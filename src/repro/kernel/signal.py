"""Signals -- primitive channels with evaluate/update semantics.

A write during the evaluate phase is only committed during the update
phase, so every process reading the signal within the same delta cycle
sees the old value (``sc_signal`` semantics).  Value-change, positive-edge
and negative-edge events are created lazily.
"""

from __future__ import annotations

from typing import Generic, Optional, TypeVar

from .context import current_simulation_or_none
from .event import Event

T = TypeVar("T")


class Signal(Generic[T]):
    """A single-driver signal carrying an arbitrary immutable value."""

    __slots__ = (
        "name",
        "_value",
        "_next_value",
        "_update_requested",
        "_changed_event",
        "_posedge_event",
        "_negedge_event",
        "_trace_hooks",
        "last_change_ps",
    )

    def __init__(self, initial: T = 0, name: str = "signal"):
        self.name = name
        self._value = initial
        self._next_value = initial
        self._update_requested = False
        self._changed_event: Optional[Event] = None
        self._posedge_event: Optional[Event] = None
        self._negedge_event: Optional[Event] = None
        self._trace_hooks = None
        self.last_change_ps = 0

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def read(self) -> T:
        """Return the current (committed) value."""
        return self._value

    @property
    def value(self) -> T:
        return self._value

    def write(self, value: T) -> None:
        """Schedule *value* to be committed at the end of this delta cycle."""
        sim = current_simulation_or_none()
        if sim is None:
            # Pre-simulation initialisation: commit directly.
            self._value = value
            self._next_value = value
            return
        if value == self._value and value == self._next_value:
            # No-op write: nothing would change at commit time, so skip
            # the update request entirely (keeps the update queue short
            # on stable signals driven every cycle).
            return
        self._next_value = value
        if not self._update_requested:
            self._update_requested = True
            sim._request_update(self)

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def default_event(self) -> Event:
        return self.value_changed

    @property
    def value_changed(self) -> Event:
        if self._changed_event is None:
            self._changed_event = Event(f"{self.name}.value_changed")
        return self._changed_event

    @property
    def posedge(self) -> Event:
        """Event fired when the value becomes truthy (e.g. 0 -> 1)."""
        if self._posedge_event is None:
            self._posedge_event = Event(f"{self.name}.posedge")
        return self._posedge_event

    @property
    def negedge(self) -> Event:
        """Event fired when the value becomes falsy (e.g. 1 -> 0)."""
        if self._negedge_event is None:
            self._negedge_event = Event(f"{self.name}.negedge")
        return self._negedge_event

    # ------------------------------------------------------------------
    # kernel hook
    # ------------------------------------------------------------------
    def _update(self) -> None:
        self._update_requested = False
        new = self._next_value
        old = self._value
        if new == old:
            return
        self._value = new
        sim = current_simulation_or_none()
        if sim is not None:
            self.last_change_ps = sim.time_ps
        if self._changed_event is not None:
            self._changed_event.notify()
        if self._posedge_event is not None and bool(new) and not bool(old):
            self._posedge_event.notify()
        if self._negedge_event is not None and not bool(new) and bool(old):
            self._negedge_event.notify()
        if self._trace_hooks:
            for hook in self._trace_hooks:
                hook(self)

    def add_trace_hook(self, hook) -> None:
        if self._trace_hooks is None:
            self._trace_hooks = []
        self._trace_hooks.append(hook)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name!r}, value={self._value!r})"
