"""Events -- the primitive synchronisation object of the kernel.

Mirrors SystemC's ``sc_event``:

* ``notify_immediate()`` triggers waiting processes within the current
  evaluation phase,
* ``notify()`` / ``notify(0)`` triggers at the next delta boundary,
* ``notify(delay)`` triggers after *delay* picoseconds of simulated time.

Later notifications never override earlier ones (SystemC's "earliest
notification wins" rule is implemented by cancelling the pending one when a
strictly earlier notification arrives).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from .context import current_simulation, current_simulation_or_none

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .process import Process

_NOT_PENDING = 0
_PENDING_DELTA = 1
_PENDING_TIMED = 2


class Event:
    """A notifiable synchronisation point processes can wait on."""

    __slots__ = (
        "name",
        "_static",
        "_static_triggers",
        "_dynamic",
        "_pending",
        "_pending_time",
        "_pending_handle",
    )

    def __init__(self, name: str = "event"):
        self.name = name
        #: processes statically sensitive to this event
        self._static: List["Process"] = []
        #: pre-resolved ``proc._triggered_static`` bound methods, parallel
        #: to ``_static`` -- sensitivity lists are fixed at elaboration,
        #: so the method lookup is hoisted out of the per-trigger path
        self._static_triggers: List[Callable[[], None]] = []
        #: processes dynamically waiting on this event
        self._dynamic: List["Process"] = []
        self._pending = _NOT_PENDING
        self._pending_time = 0
        self._pending_handle = None

    # ------------------------------------------------------------------
    # notification
    # ------------------------------------------------------------------
    def notify_immediate(self) -> None:
        """Trigger now, within the current evaluation phase."""
        self._cancel_pending()
        self._trigger()

    def notify(self, delay_ps: int = 0) -> None:
        """Trigger after *delay_ps* picoseconds (0 = next delta boundary).

        Outside an active simulation (e.g. channel setup in plain unit
        code) the notification degrades to an immediate trigger.
        """
        if delay_ps < 0:
            raise ValueError(f"negative notification delay: {delay_ps}")
        sim = current_simulation_or_none()
        if sim is None:
            self._trigger()
            return
        if delay_ps == 0:
            if self._pending == _PENDING_DELTA:
                return  # already pending at the earliest possible point
            self._cancel_pending()
            self._pending = _PENDING_DELTA
            sim._notify_delta(self)
        else:
            when = sim.time_ps + delay_ps
            if self._pending == _PENDING_DELTA:
                return  # delta beats any timed notification
            if self._pending == _PENDING_TIMED and self._pending_time <= when:
                return  # an earlier (or equal) timed notification is pending
            self._cancel_pending()
            self._pending = _PENDING_TIMED
            self._pending_time = when
            self._pending_handle = sim._notify_timed(self, when)

    def cancel(self) -> None:
        """Cancel any pending (delta or timed) notification."""
        self._cancel_pending()

    def _cancel_pending(self) -> None:
        if self._pending == _PENDING_TIMED and self._pending_handle is not None:
            self._pending_handle.cancelled = True
        self._pending = _NOT_PENDING
        self._pending_handle = None

    # ------------------------------------------------------------------
    # kernel-side hooks
    # ------------------------------------------------------------------
    def _trigger(self) -> None:
        """Fire the event: wake statically-sensitive and waiting processes."""
        self._pending = _NOT_PENDING
        self._pending_handle = None
        if self._static_triggers:
            for trigger in self._static_triggers:
                trigger()
        if self._dynamic:
            waiting = self._dynamic
            self._dynamic = []
            for proc in waiting:
                proc._triggered_dynamic(self)

    def _add_static(self, proc: "Process") -> None:
        if proc not in self._static:
            self._static.append(proc)
            self._static_triggers.append(proc._triggered_static)

    def _add_dynamic(self, proc: "Process") -> None:
        self._dynamic.append(proc)

    def _remove_dynamic(self, proc: "Process") -> None:
        try:
            self._dynamic.remove(proc)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Event({self.name!r})"


class Timeout:
    """Wait specification: resume after a fixed simulated-time delay."""

    __slots__ = ("delay_ps",)

    def __init__(self, delay_ps: int):
        if delay_ps < 0:
            raise ValueError(f"negative timeout: {delay_ps}")
        self.delay_ps = delay_ps

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay_ps} ps)"


class AnyOf:
    """Wait specification: resume when *any* of the events triggers."""

    __slots__ = ("events",)

    def __init__(self, *events: Event):
        if not events:
            raise ValueError("AnyOf requires at least one event")
        self.events: Sequence[Event] = events


class AllOf:
    """Wait specification: resume once *all* of the events have triggered."""

    __slots__ = ("events",)

    def __init__(self, *events: Event):
        if not events:
            raise ValueError("AllOf requires at least one event")
        self.events: Sequence[Event] = events


def delay(value, unit: Optional[int] = None) -> Timeout:
    """Build a :class:`Timeout` from *value* (picoseconds, or *value*×*unit*)."""
    from .simtime import to_ps

    if unit is None:
        return Timeout(int(value))
    return Timeout(to_ps(value, unit))
