"""Simulation processes: thread processes and method processes.

Thread processes are Python generator functions.  A thread suspends by
yielding a *wait specification*:

* an :class:`~repro.kernel.event.Event` -- wait for that event,
* a :class:`~repro.kernel.event.Timeout` (or ``delay(...)``) -- wait for
  simulated time to pass,
* an :class:`~repro.kernel.event.AnyOf` / :class:`AllOf` -- composite waits,
* ``None`` -- wait on the process's static sensitivity list.

Helper coroutines that need to wait must be invoked with ``yield from``,
exactly like nested blocking calls in SystemC threads.

Method processes are plain callables re-invoked each time an event in their
static sensitivity list triggers (SystemC ``SC_METHOD``).
"""

from __future__ import annotations

from typing import Callable, Generator, Iterable, List, Optional

from .event import AllOf, AnyOf, Event, Timeout


class KernelError(RuntimeError):
    """Raised for kernel-usage errors (bad wait specs, misbound ports...)."""


class Process:
    """Base class for schedulable processes."""

    __slots__ = ("name", "sim", "_static_events", "_runnable", "terminated",
                 "_dont_initialize")

    def __init__(self, name: str):
        self.name = name
        self.sim = None  # set at elaboration
        self._static_events: List[Event] = []
        self._runnable = False
        self.terminated = False
        self._dont_initialize = False

    def add_static_sensitivity(self, event: Event) -> None:
        self._static_events.append(event)
        event._add_static(self)

    # -- kernel hooks ---------------------------------------------------
    def _triggered_static(self) -> None:
        raise NotImplementedError

    def _triggered_dynamic(self, event: Event) -> None:
        raise NotImplementedError

    def _execute(self) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r})"


class ThreadProcess(Process):
    """A coroutine process (SystemC ``SC_THREAD`` / ``SC_CTHREAD``)."""

    __slots__ = ("_factory", "_gen", "_waiting_events", "_all_remaining",
                 "_timeout_event", "_timeout_ev_cache")

    def __init__(self, name: str, factory: Callable[[], Generator]):
        super().__init__(name)
        self._factory = factory
        self._gen: Optional[Generator] = None
        self._waiting_events: List[Event] = []
        self._all_remaining: int = 0
        self._timeout_event: Optional[Event] = None
        #: lazily-created private event recycled across Timeout waits.
        #: A thread has at most one timeout pending (waits are
        #: exclusive), and the only way out of a Timeout wait is that
        #: event firing -- so when the next Timeout wait starts, the
        #: cached event is guaranteed idle (no waiters, no pending
        #: notification) and can carry the new wait without allocating.
        self._timeout_ev_cache: Optional[Event] = None

    # -- trigger handling -------------------------------------------------
    def _triggered_static(self) -> None:
        # A thread waiting dynamically ignores its static sensitivity.
        if self._waiting_events or self._timeout_event is not None:
            return
        self._make_runnable()

    def _triggered_dynamic(self, event: Event) -> None:
        if self._all_remaining > 1:
            # AllOf: count down, keep waiting on the rest.
            self._all_remaining -= 1
            return
        self._clear_dynamic_waits(exclude=event)
        self._make_runnable()

    def _make_runnable(self) -> None:
        if not self._runnable and not self.terminated:
            self._runnable = True
            self.sim._schedule(self)

    def _clear_dynamic_waits(self, exclude: Optional[Event] = None) -> None:
        for ev in self._waiting_events:
            if ev is not exclude:
                ev._remove_dynamic(self)
        self._waiting_events = []
        self._all_remaining = 0
        self._timeout_event = None

    # -- execution --------------------------------------------------------
    def _execute(self) -> None:
        self._runnable = False
        if self._gen is None:
            self._gen = self._factory()
            if self._gen is None:
                # A plain function (no yields): ran to completion already.
                self.terminated = True
                return
        try:
            spec = next(self._gen)
        except StopIteration:
            self.terminated = True
            return
        self._apply_wait(spec)

    def _apply_wait(self, spec) -> None:
        if spec is None:
            # Wait on static sensitivity; nothing to register -- static
            # events call back via _triggered_static.
            if not self._static_events:
                raise KernelError(
                    f"thread {self.name!r} waited on static sensitivity "
                    "but has none"
                )
            return
        if isinstance(spec, Event):
            self._waiting_events = [spec]
            spec._add_dynamic(self)
            return
        if isinstance(spec, Timeout):
            ev = self._timeout_ev_cache
            if ev is None:
                ev = Event(f"{self.name}.timeout")
                self._timeout_ev_cache = ev
            self._timeout_event = ev
            self._waiting_events = [ev]
            ev._add_dynamic(self)
            if spec.delay_ps == 0:
                ev.notify()
            else:
                ev.notify(spec.delay_ps)
            return
        if isinstance(spec, AnyOf):
            self._waiting_events = list(spec.events)
            for ev in spec.events:
                ev._add_dynamic(self)
            return
        if isinstance(spec, AllOf):
            self._waiting_events = list(spec.events)
            self._all_remaining = len(spec.events)
            for ev in spec.events:
                ev._add_dynamic(self)
            return
        # Convenience: signals expose .value_changed / .posedge as Events,
        # but allow waiting directly on anything with a default_event().
        default = getattr(spec, "default_event", None)
        if callable(default):
            self._apply_wait(default())
            return
        raise KernelError(
            f"thread {self.name!r} yielded invalid wait spec {spec!r}"
        )


class MethodProcess(Process):
    """A function process re-run on each static trigger (``SC_METHOD``)."""

    __slots__ = ("_fn",)

    def __init__(self, name: str, fn: Callable[[], None]):
        super().__init__(name)
        self._fn = fn

    def _triggered_static(self) -> None:
        if not self._runnable and not self.terminated:
            self._runnable = True
            self.sim._schedule(self)

    def _triggered_dynamic(self, event: Event) -> None:  # pragma: no cover
        self._triggered_static()

    def _execute(self) -> None:
        self._runnable = False
        self._fn()
