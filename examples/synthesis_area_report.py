#!/usr/bin/env python
"""Synthesis comparison -- regenerates the paper's Figure 10.

Synthesises all five implementations (VHDL reference, behavioural
unoptimised/optimised, RTL unoptimised/optimised) with the paper's
settings: minimum area under the fixed 40 ns clock constraint, scan
chain included, memories excluded from the report.  Prints per-design
area/timing reports and the relative comparison of Figure 10.
"""

import sys

from repro.flow import main_module_share, run_synthesis_flow
from repro.src_design import PAPER_PARAMS, SMALL_PARAMS


def main() -> None:
    params = SMALL_PARAMS if "--small" in sys.argv else PAPER_PARAMS
    clock_ns = params.clock_period_ps / 1000.0
    print(f"Synthesis: minimum area @ {clock_ns:.0f} ns clock, "
          "scan included, memories excluded\n")

    results = run_synthesis_flow(params)
    for design in results.designs.values():
        print(design.area.format())
        print(design.timing.format())
        print()

    print(results.format_figure10())
    print()
    print(f"Section 4.4 headline: first behavioural synthesis needs "
          f"+{results.beh_unopt_overhead_percent:.1f}% area vs. the "
          f"reference (paper: +27.5%)")
    share = main_module_share(params, optimized=False)
    print(f"SRC_MAIN holds {share * 100.0:.1f}% of the unoptimised "
          f"behavioural design's area (paper: >90%)")
    if not results.all_timing_met():
        raise SystemExit("timing constraint violated")
    print("\nAll designs meet timing. OK")


if __name__ == "__main__":
    main()
