#!/usr/bin/env python
"""Co-simulation vs. native HDL simulation (paper Figure 9).

Takes the gate-level SRC produced by the RTL flow and simulates it

* natively: testbench and DUT both interpreted in the HDL simulator,
* co-simulated: the compiled "SystemC" testbench drives the HDL DUT
  through the co-simulation bridge,

checks that both produce identical outputs, and compares throughput.
Uses the reduced configuration (gate-level simulation at paper scale is
slow -- which is itself one of the paper's findings).
"""

from repro.cosim import (CosimSimulation, NativeHdlSimulation, build_dut,
                         measure_figure9, format_figure9)
from repro.src_design import SMALL_PARAMS


def main() -> None:
    params = SMALL_PARAMS
    cycles = 1500

    print("Cross-checking outputs (native vs. co-simulation)...")
    native_outs = NativeHdlSimulation(
        build_dut(params, "Gate-RTL"), params).run(cycles)
    cosim_outs = CosimSimulation(
        build_dut(params, "Gate-RTL"), params).run(cycles)
    assert native_outs == cosim_outs, "testbench technologies disagree!"
    print(f"  identical: {len(native_outs)} output frames\n")

    print("Measuring throughput (this regenerates Figure 9)...")
    results = measure_figure9(params, cycles=cycles)
    print(format_figure9(results))

    print("\nObservations (paper Section 5.1):")
    for dut, pair in results.items():
        native = pair["VHDL-Testbench"].cycles_per_second
        cosim = pair["SystemC-Testbench"].cycles_per_second
        faster = "co-sim faster" if cosim > native else "native faster"
        print(f"  {dut:10s}: {faster} by {abs(cosim / native - 1) * 100:.1f}%")
    print("OK")


if __name__ == "__main__":
    main()
