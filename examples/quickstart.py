#!/usr/bin/env python
"""Quickstart: convert a stereo sine from 44.1 kHz (CD) to 48 kHz (DVD).

Uses the golden algorithmic model -- the "initial executable
specification in C++" of the paper -- through the public API:

* configure the SRC (:class:`SrcParams`, operation modes),
* build the event schedule (when samples arrive / are requested),
* run the conversion and check signal quality.
"""

from repro.dsp import sine_samples, sine_snr_db
from repro.src_design import (AlgorithmicSrc, PAPER_PARAMS, count_outputs,
                              make_schedule)


def main() -> None:
    params = PAPER_PARAMS
    mode = 0  # 44.1 kHz -> 48 kHz
    f_in = params.modes[mode].f_in
    f_out = params.modes[mode].f_out
    n_inputs = 2000

    print(f"Sample-rate converter: {f_in} Hz -> {f_out} Hz")
    print(f"  {params.n_phases} polyphase branches x "
          f"{params.taps_per_phase} taps, "
          f"{params.data_width}-bit stereo audio")

    # 1 kHz stereo test tone (right channel inverted)
    tone = sine_samples(n_inputs, 1_000.0, f_in, params.data_width)
    stereo = [(s, -s) for s in tone]

    # the event schedule: exact input-arrival and output-request times
    schedule = make_schedule(params, mode, n_inputs)
    print(f"  {n_inputs} input frames -> "
          f"{count_outputs(schedule)} output frames")

    src = AlgorithmicSrc(params, mode)
    outputs = src.process_schedule(schedule, stereo)

    full_scale = float(1 << (params.data_width - 1))
    left = [frame[0] / full_scale for frame in outputs]
    snr = sine_snr_db(left, 1_000.0, f_out, skip=300)
    print(f"  output SNR vs. ideal 1 kHz sine: {snr:.1f} dB")

    print("  first output frames around sample 400:")
    for i in range(400, 408):
        l, r = outputs[i]
        print(f"    #{i}: L={l:6d}  R={r:6d}")

    assert snr > 40.0, "conversion quality regression"
    print("OK")


if __name__ == "__main__":
    main()
