#!/usr/bin/env python
"""The golden-model bug story (paper Section 4.7).

"During our evaluation it even happened that a bug in the golden model
was refined down to Gate-level and was discovered during Gate-level
simulation.  The bug has been identified as an erroneous access to an
invalid buffer position in some corner cases.  When the memory for the
buffer was replaced by an automatically generated simulation model (that
included a check for valid addresses), the bug became obvious."

This script reproduces that story end to end:

1. show the invalid access already exists in the C++ golden model
   (silently -- C++ just reads past the array);
2. simulate the gate-level design with plain memory models: everything
   passes, outputs bit-identical to the golden model;
3. swap in the address-checking memory model: the outputs are STILL
   bit-identical (the bug is function-preserving), but the checker now
   reports every invalid access -- the bug becomes obvious.
"""

from repro.gatesim import GateSimulator
from repro.kernel import Reporter, Severity
from repro.dsp import sine_samples
from repro.src_design import (AlgorithmicSrc, RtlDutDriver, SMALL_PARAMS,
                              build_rtl_design, make_schedule, run_clocked)
from repro.synth import synthesize


def main() -> None:
    params = SMALL_PARAMS
    n_inputs = 120
    # a mode change mid-stream: the reconfiguration flush plus an output
    # request before the next sample arrives is the corner case
    schedule = make_schedule(params, 0, n_inputs, quantized=True,
                             mode_changes=((60, 1),))
    tone = sine_samples(n_inputs, 1_000.0, params.modes[0].f_in,
                        params.data_width)
    stereo = [(s, -s) for s in tone]

    print("Step 1: the golden model silently reads an invalid address")
    invalid = []
    golden_src = AlgorithmicSrc(
        params, 0,
        monitor=lambda addr, depth: invalid.append(addr)
        if addr >= depth else None,
    )
    golden = golden_src.process_schedule(schedule, stereo)
    print(f"  C++ model issued {len(invalid)} reads of buffer address "
          f"{params.buffer_depth} (valid: 0..{params.buffer_depth - 1})")
    print("  ... and nobody noticed: the value is discarded.\n")

    print("Step 2: gate-level simulation with plain memory models")
    netlist = synthesize(build_rtl_design(params, optimized=True).module)
    plain = GateSimulator(netlist)
    outputs = run_clocked(params, RtlDutDriver(plain, params),
                          schedule, stereo)
    print(f"  {len(outputs)} outputs, bit-identical to golden model: "
          f"{outputs == golden}")
    print("  the bug survived refinement down to gates, undetected.\n")

    print("Step 3: replace the buffer memory by the generated simulation "
          "model with address checking")
    reporter = Reporter(raise_at=Severity.FATAL)
    checking = GateSimulator(netlist, checking_memories=True,
                             reporter=reporter)
    outputs2 = run_clocked(params, RtlDutDriver(checking, params),
                           schedule, stereo)
    print(f"  outputs still bit-identical: {outputs2 == golden}")
    print(f"  but the checker reports {reporter.count(Severity.ERROR)} "
          "violations:")
    for message in reporter.messages(Severity.ERROR)[:4]:
        print(f"    [ERROR] {message}")
    if reporter.count(Severity.ERROR) > 4:
        print(f"    ... and {reporter.count(Severity.ERROR) - 4} more")
    print("\nThe bug became obvious. OK")
    assert invalid and outputs == golden == outputs2
    assert reporter.count(Severity.ERROR) > 0


if __name__ == "__main__":
    main()
