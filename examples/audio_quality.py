#!/usr/bin/env python
"""Audio-quality characterisation of the SRC (domain example).

The paper's SRC is a car-multimedia component: what matters to its
users is audio quality.  This example measures the converter the way an
audio engineer would:

* frequency response (tone sweep through the converter),
* THD+N of a pure tone,
* behaviour on a chirp sweeping the audio band,

all through the golden algorithmic model at the paper-scale
configuration (identical results at every refinement level -- that is
the point of the flow).
"""

from repro.dsp import (chirp_samples, measure_frequency_response,
                       sine_samples, sine_snr_db, thd_plus_n_db)
from repro.src_design import AlgorithmicSrc, PAPER_PARAMS, make_schedule


def convert_mono(params, mode, tone):
    schedule = make_schedule(params, mode, len(tone))
    src = AlgorithmicSrc(params, mode)
    outputs = src.process_schedule(schedule, [(s, s) for s in tone])
    return [frame[0] for frame in outputs]


def main() -> None:
    params = PAPER_PARAMS
    mode = 0
    f_in = params.modes[mode].f_in
    f_out = params.modes[mode].f_out
    print(f"SRC audio quality, {f_in} -> {f_out} Hz "
          f"({params.n_phases} branches x {params.taps_per_phase} taps)\n")

    print("1. Frequency response (tone sweep)")
    response = measure_frequency_response(
        lambda tone: convert_mono(params, mode, tone),
        frequencies_hz=[100, 500, 1000, 2000, 5000, 8000, 10000,
                        12000, 15000, 17000, 19000],
        f_in=f_in, f_out=f_out, data_width=params.data_width,
        n_inputs=1500,
    )
    print(response.format())
    ripple = response.passband_ripple_db(10_000)
    print(f"  passband ripple (<=10 kHz): {ripple:.2f} dB\n")

    print("2. THD+N of a 1 kHz tone")
    tone = sine_samples(4000, 1000.0, f_in, params.data_width)
    out = convert_mono(params, mode, tone)
    thd = thd_plus_n_db(out, 1000.0, f_out, skip=300)
    snr = sine_snr_db([o / 32768.0 for o in out], 1000.0, f_out, skip=300)
    print(f"  THD+N: {thd:.1f} dB   (SNR {snr:.1f} dB)\n")

    print("3. Chirp 100 Hz -> 15 kHz survives conversion")
    chirp = chirp_samples(4000, 100.0, 15000.0, f_in, params.data_width)
    converted = convert_mono(params, mode, chirp)
    in_peak = max(abs(s) for s in chirp)
    out_peak = max(abs(s) for s in converted)
    print(f"  input peak {in_peak}, output peak {out_peak} "
          f"({out_peak / in_peak * 100:.0f}%)")

    assert ripple < 1.0, "passband ripple regression"
    assert thd < -40.0, "distortion regression"
    assert 0.7 < out_peak / in_peak < 1.3, "chirp level regression"
    print("\nOK")


if __name__ == "__main__":
    main()
