#!/usr/bin/env python
"""The refinement-driven flow, end to end (paper Figure 1 + Section 4).

Runs the full chain -- C++ golden model, SystemC hierarchical channel
(monolithic and refined), synthesisable behavioural (unoptimised and
optimised), RTL (unoptimised and optimised), gates from RTL synthesis --
and re-validates each refinement step for bit accuracy, exactly the
paper's methodology ("each refinement step was verified for bit accuracy
by simulation"), including the propagation of the clock's time
quantisation back into the golden model (Figure 7).

Uses the reduced configuration so the gate-level step stays quick; pass
``--paper`` for the full paper-scale design (slower).
"""

import sys

from repro.dsp import sine_samples
from repro.flow import REFINEMENT_CHAIN, verify_refinement
from repro.src_design import PAPER_PARAMS, SMALL_PARAMS


def main() -> None:
    paper_scale = "--paper" in sys.argv
    params = PAPER_PARAMS if paper_scale else SMALL_PARAMS
    n_inputs = 160

    tone = sine_samples(n_inputs, 1_000.0, params.modes[0].f_in,
                        params.data_width)
    stereo = [(s, -s) for s in tone]

    print("Refinement chain:")
    for level in REFINEMENT_CHAIN:
        print(f"  - {level.value}")
    print(f"\nStimulus: {n_inputs} stereo frames, one mid-run mode change "
          "(44.1->48 switches to 48->44.1)\n")

    report = verify_refinement(params, stereo, mode_changes=((80, 1),))
    print(report.format())
    if not report.all_bit_accurate:
        raise SystemExit("refinement verification FAILED")
    print("\nEvery refinement step is bit-accurate. OK")


if __name__ == "__main__":
    main()
