"""Legacy setup shim: enables editable installs where the offline
environment lacks the ``wheel`` package (``pip install -e . --no-use-pep517``).
Project metadata lives in ``pyproject.toml``."""

from setuptools import setup

setup()
