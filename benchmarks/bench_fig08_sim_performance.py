"""Figure 8 -- simulation performance on different levels of abstraction.

Regenerates the paper's Figure 8: simulated clock cycles per second for
the C++ model, the SystemC (channel) model, the synthesisable
behavioural model and the RTL model, all hosted in the same simulation
environment.  Unclocked models are scaled by simulated time at the
system clock, as in the paper.

Asserts the figure's shape: monotone slowdown with decreasing
abstraction, and a large gap between the compiled algorithmic model and
the clocked models.
"""

import pytest

from repro.flow import (format_results, measure_algorithmic,
                        measure_behavioral, measure_figure8,
                        measure_kernel_cycle_dut, measure_tlm,
                        write_bench_json)
from repro.rtl import RtlSimulator
from repro.src_design import build_rtl_design

N_INPUTS = 300


@pytest.fixture(scope="module")
def rtl_module(bench_params):
    return build_rtl_design(bench_params, optimized=True).module


def test_fig08_table(bench_params, rtl_module, capsys):
    """Prints the Figure 8 series, asserts its shape, writes the JSON."""
    results = measure_figure8(bench_params, N_INPUTS,
                              rtl_module=rtl_module)
    # the RTL point again on the compiled backend, for the perf record
    rtl_compiled = measure_kernel_cycle_dut(
        bench_params, RtlSimulator(rtl_module, backend="compiled"),
        max(20, N_INPUTS // 8), "RTL",
    )
    rtl_compiled.backend = "compiled"
    path = write_bench_json("BENCH_fig08.json",
                            results + [rtl_compiled])
    with capsys.disabled():
        print()
        print(format_results(
            results, "Figure 8 -- simulation performance (cycles/second)"
        ))
        print(f"RTL compiled backend: "
              f"{rtl_compiled.cycles_per_second:.1f} cyc/s")
        print(f"wrote {path}")
    speed = {r.level: r.cycles_per_second for r in results}
    assert speed["C++"] > speed["SystemC"] > speed["BEH"] > speed["RTL"]
    assert speed["C++"] > 10 * speed["BEH"]
    assert rtl_compiled.cycles_per_second > speed["RTL"]


def bench_cpp(benchmark, bench_params):
    benchmark(measure_algorithmic, bench_params, N_INPUTS)


def bench_systemc(benchmark, bench_params):
    benchmark(measure_tlm, bench_params, N_INPUTS)


def bench_behavioral(benchmark, bench_params):
    benchmark(measure_behavioral, bench_params, 48)


def bench_rtl(benchmark, bench_params, rtl_module):
    sim = RtlSimulator(rtl_module)
    benchmark(measure_kernel_cycle_dut, bench_params, sim, 24, "RTL")


# pytest-benchmark discovers test_* functions; expose the bench points
test_bench_cpp_level = bench_cpp
test_bench_systemc_level = bench_systemc
test_bench_behavioral_level = bench_behavioral
test_bench_rtl_level = bench_rtl
