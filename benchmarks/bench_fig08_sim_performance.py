"""Figure 8 -- simulation performance on different levels of abstraction.

Regenerates the paper's Figure 8: simulated clock cycles per second for
the C++ model, the SystemC (channel) model, the synthesisable
behavioural model and the RTL model, all hosted in the same simulation
environment.  Unclocked models are scaled by simulated time at the
system clock, as in the paper.

Asserts the figure's shape: monotone slowdown with decreasing
abstraction, and a large gap between the compiled algorithmic model and
the clocked models.
"""

import pytest

from repro.flow import (format_results, measure_algorithmic,
                        measure_beh_throughput, measure_behavioral,
                        measure_figure8, measure_kernel_cycle_dut,
                        measure_tlm, write_bench_json)
from repro.native import toolchain_available, toolchain_info
from repro.rtl import RtlSimulator
from repro.src_design import build_rtl_design

N_INPUTS = 300
#: cycles for the batch-parallel behavioural throughput points
BATCH_CYCLES = 400
#: parallel patterns for the compiled and native points (the
#: machine-word cap both engines pack into)
N_PATTERNS = 64
#: parallel patterns for the vectorized point (numpy lane arrays have
#: no word cap; 4096 sits past the engine's amortisation knee)
N_PATTERNS_VEC = 4096
#: best-of-N (minimum wall) repeats for every cross-engine comparison
BEST_OF = 3


@pytest.fixture(scope="module")
def rtl_module(bench_params):
    return build_rtl_design(bench_params, optimized=True).module


def test_fig08_table(bench_params, rtl_module, capsys):
    """Prints the Figure 8 series, asserts its shape, writes the JSON.

    On top of the paper's four interpreted points, the JSON records the
    clocked levels again on the compiled backend -- the kernel-hosted
    BEH and RTL rows (n_patterns=1) plus the batch-parallel compiled
    behavioural throughput row (n_patterns=64), whose pattern-cycles
    per second must clear 10x the interpreted BEH row -- and the
    vectorized behavioural throughput row (n_patterns=4096), which
    must clear 5x the compiled BEH row and beat the compiled batch
    row outright.  Batch rows are best-of-3 (minimum wall) so the
    cross-engine assertions sit above the timing-noise floor.
    """
    results = measure_figure8(bench_params, N_INPUTS,
                              rtl_module=rtl_module)
    # The kernel-hosted BEH row is dominated by kernel machinery, so
    # the engine gap is only ~10% of the wall time; take best-of-3
    # (minimum wall) on both engines to keep the comparison out of the
    # timing-noise floor.
    beh_inputs = max(40, N_INPUTS // 4)
    beh_idx = next(i for i, r in enumerate(results) if r.level == "BEH")
    results[beh_idx] = min(
        [results[beh_idx]]
        + [measure_behavioral(bench_params, beh_inputs)
           for _ in range(2)],
        key=lambda r: r.wall_seconds)
    beh_compiled = min(
        (measure_behavioral(bench_params, beh_inputs, backend="compiled")
         for _ in range(3)),
        key=lambda r: r.wall_seconds)
    rtl_compiled = measure_kernel_cycle_dut(
        bench_params, RtlSimulator(rtl_module, backend="compiled"),
        max(20, N_INPUTS // 8), "RTL",
    )
    rtl_compiled.backend = "compiled"
    # the compiled headline row: generated code stepping 64 patterns
    # per call (best-of-3 against the vectorized row below)
    beh_batch = min(
        (measure_beh_throughput(bench_params, BATCH_CYCLES,
                                backend="compiled",
                                n_patterns=N_PATTERNS)
         for _ in range(3)),
        key=lambda r: r.wall_seconds)
    # the vectorized headline row: the same generated structure over
    # numpy uint64 lane arrays, 4096 stimulus vectors per call
    beh_vec = min(
        (measure_beh_throughput(bench_params, BATCH_CYCLES,
                                backend="vectorized",
                                n_patterns=N_PATTERNS_VEC)
         for _ in range(3)),
        key=lambda r: r.wall_seconds)
    # the native headline row: the same structure emitted as C, one
    # toolchain call stepping all 64 patterns per simulated cycle
    # (degrades to a second compiled row on toolchain-less hosts)
    beh_native_batch = min(
        (measure_beh_throughput(bench_params, BATCH_CYCLES,
                                backend="native",
                                n_patterns=N_PATTERNS)
         for _ in range(BEST_OF)),
        key=lambda r: r.wall_seconds)
    # single-pattern latency rows: one stimulus vector per generated
    # call, the FI scalar-probe access pattern.  The native engine
    # pays a fixed FFI call floor here, so the rows are recorded for
    # honesty but carry no cross-engine ordering assertion.
    beh_lat = {
        backend: min(
            (measure_beh_throughput(bench_params, BATCH_CYCLES,
                                    backend=backend, n_patterns=1,
                                    label="BEH/latency")
             for _ in range(BEST_OF)),
            key=lambda r: r.wall_seconds)
        for backend in ("compiled", "native")
    }
    path = write_bench_json(
        "BENCH_fig08.json",
        results + [beh_compiled, rtl_compiled, beh_batch, beh_vec,
                   beh_native_batch, beh_lat["compiled"],
                   beh_lat["native"]],
        extra={"best_of": BEST_OF, "toolchain": toolchain_info()})
    with capsys.disabled():
        print()
        print(format_results(
            results, "Figure 8 -- simulation performance (cycles/second)"
        ))
        print(f"BEH compiled backend: "
              f"{beh_compiled.cycles_per_second:.1f} cyc/s")
        print(f"RTL compiled backend: "
              f"{rtl_compiled.cycles_per_second:.1f} cyc/s")
        print(f"BEH compiled x{N_PATTERNS} patterns: "
              f"{beh_batch.cycles_per_second:.1f} pattern-cyc/s")
        print(f"BEH vectorized x{N_PATTERNS_VEC} patterns: "
              f"{beh_vec.cycles_per_second:.1f} pattern-cyc/s")
        print(f"BEH native x{N_PATTERNS} patterns: "
              f"{beh_native_batch.cycles_per_second:.1f} pattern-cyc/s")
        print(f"BEH latency (1 pattern): compiled "
              f"{beh_lat['compiled'].cycles_per_second:.1f}, native "
              f"{beh_lat['native'].cycles_per_second:.1f} cyc/s")
        print(f"wrote {path}")
    speed = {r.level: r.cycles_per_second for r in results}
    assert speed["C++"] > speed["SystemC"] > speed["BEH"] > speed["RTL"]
    assert speed["C++"] > 10 * speed["BEH"]
    # compiled never loses to interpreted on the same clocked level
    assert beh_compiled.cycles_per_second >= speed["BEH"]
    assert rtl_compiled.cycles_per_second > speed["RTL"]
    # the acceptance headline: >= 10x interpreted BEH at 64 patterns
    assert beh_batch.cycles_per_second >= 10 * speed["BEH"]
    # the vectorized tier's acceptance: >= 5x the compiled BEH row at
    # >= 1024 patterns, and it never loses to the compiled batch row
    assert beh_vec.n_patterns >= 1024
    assert beh_vec.cycles_per_second \
        >= 5 * beh_compiled.cycles_per_second
    assert beh_vec.cycles_per_second >= beh_batch.cycles_per_second
    # the native tier's acceptance: never loses to the compiled batch
    # row on the throughput comparison (both best-of-3); only checked
    # when a toolchain actually compiled the native rows
    if toolchain_available():
        assert beh_native_batch.backend == "native"
        assert beh_native_batch.cycles_per_second \
            >= beh_batch.cycles_per_second


def bench_cpp(benchmark, bench_params):
    benchmark(measure_algorithmic, bench_params, N_INPUTS)


def bench_systemc(benchmark, bench_params):
    benchmark(measure_tlm, bench_params, N_INPUTS)


def bench_behavioral(benchmark, bench_params):
    benchmark(measure_behavioral, bench_params, 48)


def bench_behavioral_compiled_batch(benchmark, bench_params):
    benchmark(measure_beh_throughput, bench_params, 200, "compiled",
              N_PATTERNS)


def bench_behavioral_native_batch(benchmark, bench_params):
    benchmark(measure_beh_throughput, bench_params, 200, "native",
              N_PATTERNS)


def bench_rtl(benchmark, bench_params, rtl_module):
    sim = RtlSimulator(rtl_module)
    benchmark(measure_kernel_cycle_dut, bench_params, sim, 24, "RTL")


# pytest-benchmark discovers test_* functions; expose the bench points
test_bench_cpp_level = bench_cpp
test_bench_systemc_level = bench_systemc
test_bench_behavioral_level = bench_behavioral
test_bench_behavioral_compiled_batch = bench_behavioral_compiled_batch
test_bench_behavioral_native_batch = bench_behavioral_native_batch
test_bench_rtl_level = bench_rtl
