"""Ablation benches for the design choices Section 4.4 discusses.

Each ablation flips exactly one optimisation knob of the behavioural
design and reports the area delta, quantifying the individual
contributions behind the BEH-unopt -> BEH-opt improvement:

* handshake elimination ("Handshaking in loops"),
* bit-width tightening ("Bit-widths"),
* cleanup of registered temporaries ("Code proliferation"),
* register sharing / dead-write pruning (allocation quality),
* mode-decode folding ("Generality"),
* scan-chain insertion overhead (Section 5.2's scan inclusion).
"""

import pytest

from repro.src_design import (BehavioralOptions, build_behavioral_design,
                              build_rtl_design)
from repro.synth import report_area, synthesize


def _area(params, options, scan=True):
    module = build_behavioral_design(params, options).module
    return report_area(synthesize(module, scan=scan))


@pytest.fixture(scope="module")
def unopt_area(bench_params):
    return _area(bench_params, BehavioralOptions.unoptimized())


@pytest.fixture(scope="module")
def opt_area(bench_params):
    return _area(bench_params, BehavioralOptions.optimized())


def _flip(base: BehavioralOptions, **kw) -> BehavioralOptions:
    from dataclasses import replace

    return replace(base, **kw)


def test_ablation_handshake(bench_params, unopt_area, capsys):
    """Removing only the handshake from the unoptimised design."""
    no_hs = _area(bench_params,
                  _flip(BehavioralOptions.unoptimized(), handshake=False))
    saved = unopt_area.total - no_hs.total
    with capsys.disabled():
        print(f"\nhandshake elimination saves {saved:.0f} GE "
              f"({saved / unopt_area.total * 100:.1f}% of BEH-unopt)")
    assert saved > 0


def test_ablation_bitwidths(bench_params, unopt_area, capsys):
    """Tightening only the bit widths."""
    tight = _area(bench_params,
                  _flip(BehavioralOptions.unoptimized(),
                        pessimistic_widths=False))
    saved = unopt_area.total - tight.total
    with capsys.disabled():
        print(f"\nbit-width tightening saves {saved:.0f} GE "
              f"({saved / unopt_area.total * 100:.1f}% of BEH-unopt)")
    assert saved > 0
    # widths are the single biggest lever (the multiplier shrinks)
    assert saved / unopt_area.total > 0.05


def test_ablation_registered_temps(bench_params, unopt_area, capsys):
    """Cleaning up only the redundant registered temporaries."""
    clean = _area(bench_params,
                  _flip(BehavioralOptions.unoptimized(),
                        registered_temps=False))
    saved = unopt_area.total - clean.total
    with capsys.disabled():
        print(f"\ntemp cleanup saves {saved:.0f} GE")
    assert saved > 0


def test_ablation_register_sharing(bench_params, unopt_area, capsys):
    """Enabling only register sharing and dead-write pruning."""
    shared = _area(bench_params,
                   _flip(BehavioralOptions.unoptimized(),
                         share_registers=True, prune_dead_writes=True))
    saved_seq = unopt_area.sequential - shared.sequential
    with capsys.disabled():
        print(f"\nregister sharing saves {saved_seq:.0f} GE sequential")
    assert saved_seq > 0


def test_ablation_generic_modes(bench_params, unopt_area, capsys):
    """Folding only the 8-mode generic decode to the 2 real modes."""
    folded = _area(bench_params,
                   _flip(BehavioralOptions.unoptimized(), generic_modes=2))
    saved = unopt_area.total - folded.total
    with capsys.disabled():
        print(f"\nmode folding saves {saved:.0f} GE")
    assert saved >= 0  # small but never negative


def test_ablation_all_knobs_account_for_gap(bench_params, unopt_area,
                                            opt_area):
    """Flipping all knobs lands exactly on the optimised design."""
    assert opt_area.total < unopt_area.total
    everything = _area(
        bench_params,
        _flip(BehavioralOptions.unoptimized(), handshake=False,
              pessimistic_widths=False, registered_temps=False,
              share_registers=True, prune_dead_writes=True,
              generic_modes=0),
    )
    assert everything.total == pytest.approx(opt_area.total)


def test_ablation_scan_overhead(bench_params, capsys):
    """Scan-chain insertion cost (the paper includes scan in all area
    numbers)."""
    module = build_rtl_design(bench_params, True).module
    with_scan = report_area(synthesize(module))
    module2 = build_rtl_design(bench_params, True).module
    without = report_area(synthesize(module2, scan=False))
    overhead = with_scan.total - without.total
    with capsys.disabled():
        print(f"\nscan chain costs {overhead:.0f} GE "
              f"({overhead / without.total * 100:.1f}%)")
    assert overhead > 0
    assert with_scan.combinational == pytest.approx(without.combinational)


def test_ablation_scheduling_clock_budget(bench_params, capsys):
    """Scheduling under a tighter clock budget needs more states.

    The behavioural scheduler chains operators while the clock budget
    allows; a faster clock forces deeper pipelining of the control
    steps (the scheduling-mode lever of Section 4.3).
    """
    from repro.hls import Scheduler, SchedulingConstraints
    from repro.src_design import build_main_program

    prog_a = build_main_program(bench_params, True)
    slow = Scheduler(prog_a, SchedulingConstraints(
        clock_ns=bench_params.clock_period_ps / 1000.0)).run()
    # the tightest clock that still fits the single-statement MAC chain
    tight_ns = 22.0
    prog_b = build_main_program(bench_params, True)
    fast = Scheduler(prog_b, SchedulingConstraints(clock_ns=tight_ns)).run()
    with capsys.disabled():
        print(f"\nstates at {bench_params.clock_period_ps / 1000:.0f} ns "
              f"clock: {len(slow.states)}; at {tight_ns:.0f} ns: "
              f"{len(fast.states)}")
    assert len(fast.states) >= len(slow.states)


def test_bench_build_behavioral(benchmark, bench_params):
    benchmark(build_behavioral_design, bench_params, True)
