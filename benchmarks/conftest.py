"""Benchmark configuration.

By default the benchmarks run on the paper-scale configuration
(64 phases, 16-bit stereo, 25 MHz) for everything except gate-level
simulation, which uses the reduced configuration to keep wall time
sane.  Set ``REPRO_BENCH_SCALE=small`` to run everything small, or
``REPRO_BENCH_SCALE=paper`` to force paper scale everywhere.
"""

import os

import pytest

from repro.src_design.params import PAPER_PARAMS, SMALL_PARAMS


def _scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "mixed")


@pytest.fixture(scope="session")
def bench_params():
    """Parameters for algorithm/RTL-level benchmarks."""
    return SMALL_PARAMS if _scale() == "small" else PAPER_PARAMS


@pytest.fixture(scope="session")
def gate_params():
    """Parameters for gate-level benchmarks (reduced by default)."""
    return PAPER_PARAMS if _scale() == "paper" else SMALL_PARAMS
