"""Figure 10 -- comparison of area efficiency (plus Section 4.4 numbers).

Synthesises all five implementations with the paper's settings (minimum
area under the fixed clock, scan chain included, memories excluded) and
prints the relative-area table of Figure 10.  Asserts every qualitative
claim of the paper's Section 5.2 and the Section 4.4 headline numbers:

* the first behavioural synthesis needs ~27.5 % more area than the
  VHDL reference (we assert the ballpark),
* SRC_MAIN holds > 90 % of the unoptimised behavioural design's area,
* every optimised SystemC implementation beats the VHDL reference,
* even the unoptimised RTL beats the reference,
* BEH-opt and RTL-opt have nearly the same combinational area; the RTL
  advantage comes from registers,
* all designs meet the timing constraint.
"""

import pytest

from repro.flow import (FIG10_ORDER, main_module_share, run_synthesis_flow)
from repro.src_design import build_behavioral_design, build_rtl_design
from repro.synth import synthesize


@pytest.fixture(scope="module")
def flow_results(bench_params):
    return run_synthesis_flow(bench_params)


def test_fig10_table(flow_results, capsys):
    with capsys.disabled():
        print()
        print(flow_results.format_figure10())
        print(f"\nBEH-unopt overhead vs. reference: "
              f"+{flow_results.beh_unopt_overhead_percent:.1f}% "
              f"(paper: +27.5%)")
    rel = {n: flow_results.relative(n) for n in FIG10_ORDER}
    assert rel["BEH unopt."].total > 100.0
    assert rel["BEH opt."].total < 100.0
    assert rel["RTL unopt."].total < 100.0
    assert rel["RTL opt."].total < 100.0
    assert rel["RTL opt."].total == min(r.total for r in rel.values())


def test_num1_beh_unopt_overhead(flow_results):
    assert 10.0 < flow_results.beh_unopt_overhead_percent < 45.0


def test_num1_src_main_share(bench_params, capsys):
    share = main_module_share(bench_params, optimized=False)
    with capsys.disabled():
        print(f"\nSRC_MAIN share of BEH-unopt area: {share * 100.0:.1f}% "
              f"(paper: >90%)")
    assert share > 0.85


def test_comb_area_beh_opt_vs_rtl_opt(flow_results):
    beh = flow_results.designs["BEH opt."].area.combinational
    rtl = flow_results.designs["RTL opt."].area.combinational
    assert abs(beh - rtl) / max(beh, rtl) < 0.15


def test_register_savings_dominate_rtl_advantage(flow_results):
    beh = flow_results.designs["BEH opt."].area
    rtl = flow_results.designs["RTL opt."].area
    assert beh.sequential - rtl.sequential > 0


def test_timing_goal_met_by_all(flow_results):
    """Paper: 'the timing goal could be easily achieved by all
    implementations'."""
    for design in flow_results.designs.values():
        assert design.timing.met, design.timing.format()
        assert design.timing.slack_ns > 0


def test_bench_synthesize_beh_opt(benchmark, bench_params):
    module = build_behavioral_design(bench_params, True).module
    benchmark(synthesize, module)


def test_bench_synthesize_rtl_opt(benchmark, bench_params):
    module = build_rtl_design(bench_params, True).module
    benchmark(synthesize, module)
