"""Figure 9 -- co-simulation vs. native HDL simulation.

Regenerates the paper's Figure 9: cycles/second for the paper's three
DUTs (intermediate RTL Verilog from RTL-SystemC synthesis, gates from
the behavioural flow, gates from the RTL flow) plus the behavioural
model behind a pin adapter, each simulated once in the VHDL testbench
(native, fully interpreted) and once in the SystemC testbench
(compiled testbench through the co-simulation bridge).

Asserts the paper's observation: "the co-simulation of the DUT in the
SystemC testbench is slightly faster than a native HDL simulation".
"""

import pytest

from repro.cosim import (CosimSimulation, NativeHdlSimulation, build_dut,
                         format_figure9, measure_figure9,
                         measure_gate_throughput)
from repro.flow import measure_beh_throughput, write_bench_json
from repro.native import toolchain_available, toolchain_info

CYCLES = 1500
GATE_CYCLES = 600
#: raw gate-level stimulus throughput: cycles per backend measurement
THROUGHPUT_CYCLES = 250
#: parallel patterns for the compiled and native batch points
N_PATTERNS = 64
#: parallel patterns for the vectorized backend's throughput points --
#: numpy bitplane words carry no 64-pattern cap, so the sweep runs two
#: orders of magnitude wider than the compiled word-packed batch
N_PATTERNS_VEC = 8192


def _best_pair(params, cycles, kind, repeats=3):
    """Best-of-N (minimum wall) per testbench side.

    Native and co-sim run at parity within a few percent, so a single
    sample sits inside the timing-noise floor; the minimum over
    repeated runs discards load spikes on either side.
    """
    pairs = [measure_figure9(params, cycles, duts=[kind])[kind]
             for _ in range(repeats)]
    return {tb: min((pair[tb] for pair in pairs),
                    key=lambda r: r.wall_seconds)
            for tb in pairs[0]}


@pytest.fixture(scope="module")
def fig9_results(gate_params):
    return {
        "BEH": _best_pair(gate_params, CYCLES, "BEH"),
        "RTL": _best_pair(gate_params, CYCLES, "RTL"),
        "Gate-BEH": _best_pair(gate_params, GATE_CYCLES, "Gate-BEH"),
        "Gate-RTL": _best_pair(gate_params, GATE_CYCLES, "Gate-RTL"),
    }


def test_fig09_table(fig9_results, capsys):
    with capsys.disabled():
        print()
        print(format_figure9(fig9_results))
    for dut, pair in fig9_results.items():
        native = pair["VHDL-Testbench"].cycles_per_second
        cosim = pair["SystemC-Testbench"].cycles_per_second
        # co-sim is at least on par, typically slightly faster
        assert cosim > native * 0.95, dut


def test_fig09_rtl_faster_than_gates(fig9_results):
    rtl = fig9_results["RTL"]["SystemC-Testbench"].cycles_per_second
    for dut in ("Gate-BEH", "Gate-RTL"):
        gate = fig9_results[dut]["SystemC-Testbench"].cycles_per_second
        assert rtl > gate


def _best_of(measure, repeats=3):
    """Best-of-N (minimum wall) of a throughput measurement thunk."""
    return min((measure() for _ in range(repeats)),
               key=lambda r: r.wall_seconds)


def test_fig09_backends_json(fig9_results, gate_params, capsys):
    """Gate-level backend comparison; writes ``BENCH_fig09.json``.

    The compiled backend's raw stimulus throughput with parallel
    patterns must beat the interpreted simulator by >= 10x on the
    Figure 9 gate DUTs -- the headline number of the compiled backend.
    The vectorized backend's numpy bitplane sweep at 8192 patterns
    must in turn beat the compiled 64-pattern batch by >= 5x on the
    same DUTs -- the headline number of the vectorized tier.  All
    batch points are best-of-3 (minimum wall) so the cross-engine
    ratios sit above the timing-noise floor.
    """
    results = [r for pair in fig9_results.values() for r in pair.values()]
    speedups = {}
    vec_speedups = {}
    native_speedups = {}
    for kind in ("Gate-BEH", "Gate-RTL"):
        interp = measure_gate_throughput(
            gate_params, kind, THROUGHPUT_CYCLES, backend="interpreted"
        )
        compiled = _best_of(lambda: measure_gate_throughput(
            gate_params, kind, THROUGHPUT_CYCLES, backend="compiled",
            n_patterns=N_PATTERNS,
        ))
        vectorized = _best_of(lambda: measure_gate_throughput(
            gate_params, kind, THROUGHPUT_CYCLES, backend="vectorized",
            n_patterns=N_PATTERNS_VEC,
        ))
        native = _best_of(lambda: measure_gate_throughput(
            gate_params, kind, THROUGHPUT_CYCLES, backend="native",
            n_patterns=N_PATTERNS,
        ))
        # single-pattern latency rows: the scalar-probe access pattern
        # (one stimulus vector per generated call), compiled vs native
        lat_compiled = _best_of(lambda: measure_gate_throughput(
            gate_params, kind, THROUGHPUT_CYCLES, backend="compiled",
            label=f"{kind}/latency"))
        lat_native = _best_of(lambda: measure_gate_throughput(
            gate_params, kind, THROUGHPUT_CYCLES, backend="native",
            label=f"{kind}/latency"))
        speedups[kind] = (compiled.cycles_per_second
                          / interp.cycles_per_second)
        vec_speedups[kind] = (vectorized.cycles_per_second
                              / compiled.cycles_per_second)
        native_speedups[kind] = (native.cycles_per_second
                                 / compiled.cycles_per_second)
        results += [interp, compiled, vectorized, native,
                    lat_compiled, lat_native]
    # the behavioural mirror of the gate-throughput pair: the scheduled
    # FSM driven with fresh random vectors, interpreted vs. compiled
    # batch-parallel generated code vs. the vectorized lane sweep vs.
    # the native C batch
    beh_interp = measure_beh_throughput(
        gate_params, THROUGHPUT_CYCLES, backend="interpreted",
        label="BEH/throughput")
    beh_compiled = _best_of(lambda: measure_beh_throughput(
        gate_params, THROUGHPUT_CYCLES, backend="compiled",
        n_patterns=N_PATTERNS, label="BEH/throughput"))
    beh_vectorized = _best_of(lambda: measure_beh_throughput(
        gate_params, THROUGHPUT_CYCLES, backend="vectorized",
        n_patterns=N_PATTERNS_VEC // 2, label="BEH/throughput"))
    beh_native = _best_of(lambda: measure_beh_throughput(
        gate_params, THROUGHPUT_CYCLES, backend="native",
        n_patterns=N_PATTERNS, label="BEH/throughput"))
    beh_lat = {
        backend: _best_of(lambda: measure_beh_throughput(
            gate_params, THROUGHPUT_CYCLES, backend=backend,
            n_patterns=1, label="BEH/latency"))
        for backend in ("compiled", "native")
    }
    beh_speedup = (beh_compiled.cycles_per_second
                   / beh_interp.cycles_per_second)
    results += [beh_interp, beh_compiled, beh_vectorized, beh_native,
                beh_lat["compiled"], beh_lat["native"]]
    path = write_bench_json(
        "BENCH_fig09.json", results,
        extra={"gate_speedup": speedups, "beh_speedup": beh_speedup,
               "gate_speedup_vectorized": vec_speedups,
               "gate_speedup_native": native_speedups,
               "n_patterns": N_PATTERNS,
               "n_patterns_vectorized": N_PATTERNS_VEC,
               "best_of": 3, "toolchain": toolchain_info()},
    )
    with capsys.disabled():
        print()
        for kind, ratio in speedups.items():
            print(f"{kind}: compiled x{N_PATTERNS} patterns = "
                  f"{ratio:.1f}x interpreted gate throughput")
        for kind, ratio in vec_speedups.items():
            print(f"{kind}: vectorized x{N_PATTERNS_VEC} patterns = "
                  f"{ratio:.1f}x compiled x{N_PATTERNS}")
        for kind, ratio in native_speedups.items():
            print(f"{kind}: native x{N_PATTERNS} patterns = "
                  f"{ratio:.1f}x compiled x{N_PATTERNS}")
        print(f"BEH: compiled x{N_PATTERNS} patterns = "
              f"{beh_speedup:.1f}x interpreted FSM throughput")
        print(f"BEH: vectorized x{N_PATTERNS_VEC // 2} patterns = "
              f"{beh_vectorized.cycles_per_second:.0f} pattern-cyc/s")
        print(f"BEH: native x{N_PATTERNS} patterns = "
              f"{beh_native.cycles_per_second:.0f} pattern-cyc/s")
        print(f"wrote {path}")
    for kind, ratio in speedups.items():
        assert ratio >= 10.0, (kind, ratio)
    assert beh_speedup > 1.0, beh_speedup
    # the vectorized tier's acceptance: >= 5x the compiled batch row at
    # >= 1024 patterns on both gate DUTs; at the behavioural level the
    # per-state lane masking caps the win, so there it must only never
    # lose to the compiled batch row
    for kind, ratio in vec_speedups.items():
        assert ratio >= 5.0, (kind, ratio)
    assert beh_vectorized.n_patterns >= 1024
    assert beh_vectorized.cycles_per_second \
        >= beh_compiled.cycles_per_second
    # the native tier's acceptance: never loses to the compiled batch
    # row on any throughput comparison (latency rows are recorded but
    # unasserted -- the FFI call floor dominates single-pattern work);
    # only checked when a toolchain actually compiled the native rows
    if toolchain_available():
        for kind, ratio in native_speedups.items():
            assert ratio >= 1.0, (kind, ratio)
        assert beh_native.backend == "native"
        assert beh_native.cycles_per_second \
            >= beh_compiled.cycles_per_second


def test_bench_native_rtl(benchmark, gate_params):
    dut = build_dut(gate_params, "RTL")
    sim = NativeHdlSimulation(dut, gate_params)
    benchmark(sim.run, 500)


def test_bench_cosim_rtl(benchmark, gate_params):
    dut = build_dut(gate_params, "RTL")
    sim = CosimSimulation(dut, gate_params)
    benchmark(sim.run, 500)


def test_bench_cosim_gate_rtl(benchmark, gate_params):
    dut = build_dut(gate_params, "Gate-RTL")
    sim = CosimSimulation(dut, gate_params)
    benchmark(sim.run, 200)
