"""Figure 9 -- co-simulation vs. native HDL simulation.

Regenerates the paper's Figure 9: cycles/second for the three DUTs
(intermediate RTL Verilog from RTL-SystemC synthesis, gates from the
behavioural flow, gates from the RTL flow), each simulated once in the
VHDL testbench (native, fully interpreted) and once in the SystemC
testbench (compiled testbench through the co-simulation bridge).

Asserts the paper's observation: "the co-simulation of the DUT in the
SystemC testbench is slightly faster than a native HDL simulation".
"""

import pytest

from repro.cosim import (CosimSimulation, NativeHdlSimulation, build_dut,
                         format_figure9, measure_figure9)

CYCLES = 1500
GATE_CYCLES = 600


@pytest.fixture(scope="module")
def fig9_results(gate_params):
    return {
        "RTL": measure_figure9(gate_params, CYCLES, duts=["RTL"])["RTL"],
        "Gate-BEH": measure_figure9(gate_params, GATE_CYCLES,
                                    duts=["Gate-BEH"])["Gate-BEH"],
        "Gate-RTL": measure_figure9(gate_params, GATE_CYCLES,
                                    duts=["Gate-RTL"])["Gate-RTL"],
    }


def test_fig09_table(fig9_results, capsys):
    with capsys.disabled():
        print()
        print(format_figure9(fig9_results))
    for dut, pair in fig9_results.items():
        native = pair["VHDL-Testbench"].cycles_per_second
        cosim = pair["SystemC-Testbench"].cycles_per_second
        # co-sim is at least on par, typically slightly faster
        assert cosim > native * 0.95, dut


def test_fig09_rtl_faster_than_gates(fig9_results):
    rtl = fig9_results["RTL"]["SystemC-Testbench"].cycles_per_second
    for dut in ("Gate-BEH", "Gate-RTL"):
        gate = fig9_results[dut]["SystemC-Testbench"].cycles_per_second
        assert rtl > gate


def test_bench_native_rtl(benchmark, gate_params):
    dut = build_dut(gate_params, "RTL")
    sim = NativeHdlSimulation(dut, gate_params)
    benchmark(sim.run, 500)


def test_bench_cosim_rtl(benchmark, gate_params):
    dut = build_dut(gate_params, "RTL")
    sim = CosimSimulation(dut, gate_params)
    benchmark(sim.run, 500)


def test_bench_cosim_gate_rtl(benchmark, gate_params):
    dut = build_dut(gate_params, "Gate-RTL")
    sim = CosimSimulation(dut, gate_params)
    benchmark(sim.run, 200)
